"""Remote attestation flow: measurement, quotes, secret release."""

import dataclasses

import pytest

from repro.tee.attestation import AttestationService, RelyingParty, measure


@pytest.fixture
def artifacts():
    return {"manifest": b"sgx.enclave_size = \"64G\"", "binary": b"\x7fELF..."}


class TestMeasurement:
    def test_deterministic(self, artifacts):
        assert measure(artifacts) == measure(artifacts)

    def test_order_independent(self, artifacts):
        reordered = dict(reversed(list(artifacts.items())))
        assert measure(artifacts) == measure(reordered)

    def test_content_sensitive(self, artifacts):
        tampered = dict(artifacts, manifest=b"sgx.enclave_size = \"1G\"")
        assert measure(artifacts) != measure(tampered)

    def test_name_sensitive(self, artifacts):
        renamed = {"manifest2": artifacts["manifest"],
                   "binary": artifacts["binary"]}
        assert measure(artifacts) != measure(renamed)

    def test_no_concatenation_collision(self):
        """Name/content boundaries must be unambiguous."""
        a = measure({"ab": b"c"})
        b = measure({"a": b"bc"})
        assert a != b


class TestQuoteFlow:
    def test_happy_path(self, artifacts):
        measurement = measure(artifacts)
        service = AttestationService()
        service.provision_platform("fmspc-001")
        quote = service.generate_quote("fmspc-001", measurement)

        party = RelyingParty(expected_measurement=measurement)
        assert party.verify(quote)

    def test_unprovisioned_platform(self):
        service = AttestationService()
        with pytest.raises(KeyError):
            service.generate_quote("rogue", "deadbeef")

    def test_wrong_measurement_rejected(self, artifacts):
        service = AttestationService()
        service.provision_platform("p1")
        quote = service.generate_quote("p1", measure(artifacts))
        party = RelyingParty(expected_measurement="0" * 96)
        assert not party.verify(quote)

    def test_forged_signature_rejected(self, artifacts):
        service = AttestationService()
        service.provision_platform("p1")
        quote = service.generate_quote("p1", measure(artifacts))
        forged = dataclasses.replace(quote, signature="00" * 32)
        party = RelyingParty(expected_measurement=quote.measurement)
        assert not party.verify(forged)

    def test_replayed_quote_from_other_platform(self, artifacts):
        """A quote signed by platform A fails when platform id is swapped."""
        service = AttestationService()
        service.provision_platform("A")
        quote = service.generate_quote("A", measure(artifacts))
        swapped = dataclasses.replace(quote, platform_id="B")
        party = RelyingParty(expected_measurement=quote.measurement)
        assert not party.verify(swapped)

    def test_report_data_binding(self, artifacts):
        service = AttestationService()
        service.provision_platform("p1")
        quote = service.generate_quote("p1", measure(artifacts),
                                       report_data="kex-pubkey-hash")
        tampered = dataclasses.replace(quote, report_data="other")
        party = RelyingParty(expected_measurement=quote.measurement)
        assert party.verify(quote)
        assert not party.verify(tampered)


class TestSecretRelease:
    def test_released_only_after_attestation(self, artifacts):
        measurement = measure(artifacts)
        service = AttestationService()
        service.provision_platform("p1")
        party = RelyingParty(expected_measurement=measurement)
        party.register_secret("model-key", b"k" * 32)

        good = service.generate_quote("p1", measurement)
        assert party.release_secret("model-key", good) == b"k" * 32

        bad = dataclasses.replace(good, measurement="f" * 96,
                                  signature=good.signature)
        with pytest.raises(PermissionError):
            party.release_secret("model-key", bad)

    def test_unknown_secret(self, artifacts):
        measurement = measure(artifacts)
        service = AttestationService()
        service.provision_platform("p1")
        party = RelyingParty(expected_measurement=measurement)
        quote = service.generate_quote("p1", measurement)
        with pytest.raises(KeyError):
            party.release_secret("nope", quote)
