"""QEMU/libvirt TDX guest configuration and LUKS plans."""

import pytest

from repro.memsim.pages import GB, HugepagePolicy
from repro.tee.qemu import LuksPlan, TdxVmConfig, paper_tdx_guest


def make_config(**overrides):
    base = dict(name="td0", vcpus=32, memory_bytes=128 * GB)
    base.update(overrides)
    return TdxVmConfig(**base)


class TestValidation:
    def test_valid(self):
        make_config().validate()

    def test_tdx_requires_luks(self):
        """§III-B: TDX does not protect storage; users must add LUKS."""
        with pytest.raises(ValueError, match="LUKS"):
            make_config(luks_encrypted=False).validate()

    def test_plain_vm_may_skip_luks(self):
        make_config(tdx_enabled=False, luks_encrypted=False).validate()

    def test_tiny_memory_rejected(self):
        with pytest.raises(ValueError):
            make_config(memory_bytes=GB // 2).validate()


class TestQemuArgs:
    def test_tdx_objects_present(self):
        args = " ".join(make_config().qemu_args())
        assert "tdx-guest,id=tdx0" in args
        assert "confidential-guest-support=tdx0" in args
        assert "OVMF_TDX.fd" in args

    def test_plain_vm_has_no_tdx(self):
        args = " ".join(make_config(tdx_enabled=False).qemu_args())
        assert "tdx" not in args

    def test_hugepage_backend(self):
        args = " ".join(make_config(
            hugepages=HugepagePolicy.RESERVED_1G,
            numa_nodes=(0,)).qemu_args())
        assert "/dev/hugepages-1G" in args
        assert "policy=bind" in args

    def test_luks_drive(self):
        args = " ".join(make_config().qemu_args())
        assert "encrypt.format=luks" in args

    def test_memory_size(self):
        args = make_config(memory_bytes=64 * GB).qemu_args()
        assert "64G" in args[args.index("-m") + 1]


class TestLibvirtXml:
    def test_launch_security_element(self):
        xml = make_config().libvirt_xml()
        assert "<launchSecurity type='tdx'/>" in xml

    def test_cpu_pinning(self):
        xml = make_config(cpu_pin=("0-31",)).libvirt_xml()
        assert "cpuset='0-31'" in xml

    def test_hugepage_nodeset(self):
        xml = make_config(hugepages=HugepagePolicy.RESERVED_1G,
                          numa_nodes=(0, 1)).libvirt_xml()
        assert "nodeset=\"0,1\"" in xml
        assert "size='1048576'" in xml


class TestPaperGuest:
    def test_single_socket_shape(self):
        config = paper_tdx_guest(cpu_cores=60, memory_gib=128)
        config.validate()
        assert config.vcpus == 60
        assert config.numa_nodes == (0,)
        assert config.hugepages is HugepagePolicy.RESERVED_1G
        assert config.luks_encrypted

    def test_two_socket_pinning(self):
        config = paper_tdx_guest(cpu_cores=32, memory_gib=256, sockets=(0, 1))
        assert config.vcpus == 64
        assert config.cpu_pin == ("0-31", "32-63")

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            paper_tdx_guest(cpu_cores=0, memory_gib=128)


class TestLuksPlan:
    def test_commands_ordered(self):
        commands = LuksPlan("/dev/vda").commands()
        assert commands[0].startswith("cryptsetup luksFormat")
        assert "cryptsetup open" in commands[1]
        assert commands[2].startswith("mkfs")

    def test_bad_device(self):
        with pytest.raises(ValueError):
            LuksPlan("vda").validate()

    def test_bad_cipher(self):
        with pytest.raises(ValueError):
            LuksPlan("/dev/vda", cipher="rot13").validate()

    def test_key_bits(self):
        with pytest.raises(ValueError):
            LuksPlan("/dev/vda", key_bits=128).validate()
