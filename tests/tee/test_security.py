"""Security property matrix (Table I rows)."""

import pytest

from repro.tee.security import (
    B100_SECURITY,
    CGPU_SECURITY,
    SGX_SECURITY,
    TDX_SECURITY,
    VM_SECURITY,
    SecurityProfile,
    Support,
)


class TestMatrix:
    def test_cpu_tees_encrypt_memory(self):
        assert SGX_SECURITY.memory_encrypted is Support.FULL
        assert TDX_SECURITY.memory_encrypted is Support.FULL

    def test_h100_hbm_unencrypted(self):
        """The paper's headline cGPU security gap."""
        assert CGPU_SECURITY.memory_encrypted is Support.NONE

    def test_b100_closes_the_gaps(self):
        assert B100_SECURITY.memory_encrypted is Support.FULL
        assert B100_SECURITY.scale_up_protected is Support.FULL

    def test_sgx_smallest_tcb(self):
        """SGX trusts only a libOS; TDX trusts the whole guest stack."""
        assert SGX_SECURITY.tcb_size_rank < TDX_SECURITY.tcb_size_rank

    def test_dev_cost_ordering(self):
        """Insight 2: SGX hardest to use; cGPU runs unmodified CUDA."""
        assert (SGX_SECURITY.development_cost
                > TDX_SECURITY.development_cost
                >= CGPU_SECURITY.development_cost)

    def test_only_tees_attest(self):
        assert SGX_SECURITY.attestable and TDX_SECURITY.attestable
        assert not VM_SECURITY.attestable


class TestStricterThan:
    def test_cpu_tees_stricter_than_cgpu(self):
        """Insight 11's security half."""
        assert TDX_SECURITY.stricter_than(CGPU_SECURITY)
        assert SGX_SECURITY.stricter_than(CGPU_SECURITY)

    def test_cgpu_not_stricter_than_cpu(self):
        assert not CGPU_SECURITY.stricter_than(TDX_SECURITY)

    def test_not_stricter_than_self(self):
        assert not TDX_SECURITY.stricter_than(TDX_SECURITY)

    def test_b100_matches_tdx_hardware_protections(self):
        assert not TDX_SECURITY.stricter_than(B100_SECURITY)


class TestGlyphs:
    def test_support_glyphs(self):
        assert Support.FULL.glyph == "#"
        assert Support.PARTIAL.glyph == "="
        assert Support.NONE.glyph == "."

    def test_dev_cost_bounds(self):
        with pytest.raises(ValueError):
            SecurityProfile("x", Support.NONE, Support.NONE, Support.FULL,
                            Support.FULL, Support.FULL, False,
                            development_cost=9)
