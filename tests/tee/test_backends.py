"""Backend registry, cost profiles, and mechanism toggles."""

import pytest

from repro.memsim.numa import NumaPolicy
from repro.memsim.pages import HugepagePolicy
from repro.tee.base import (
    CostProfile,
    MechanismToggles,
    all_backends,
    backend_by_name,
    register_backend,
)
from repro.tee.backends import BAREMETAL, CGPU, GPU, SGX, TDX, VM, VM_UNBOUND


class TestRegistry:
    def test_all_paper_backends_registered(self):
        names = set(all_backends())
        assert {"baremetal", "vm", "vm-unbound", "tdx", "sgx", "gpu",
                "cgpu"} <= names

    def test_lookup(self):
        assert backend_by_name("tdx") is TDX
        with pytest.raises(KeyError):
            backend_by_name("sev-snp")

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register_backend(TDX)

    def test_tee_flags(self):
        assert TDX.is_tee and SGX.is_tee and CGPU.is_tee
        assert not (BAREMETAL.is_tee or VM.is_tee or GPU.is_tee)

    def test_devices(self):
        assert TDX.device == "cpu"
        assert CGPU.device == "gpu"


class TestCostProfiles:
    def test_baremetal_is_free(self):
        profile = BAREMETAL.cost_profile()
        assert profile.mem_encryption_derate == 0.0
        assert profile.walk_multiplier == 1.0
        assert profile.virtualization_tax == 0.0

    def test_vm_pays_virtualization_only(self):
        profile = VM.cost_profile()
        assert profile.virtualization_tax > 0.0
        assert profile.walk_multiplier > 1.0
        assert profile.mem_encryption_derate == 0.0

    def test_tdx_stacks_on_vm(self):
        vm, tdx = VM.cost_profile(), TDX.cost_profile()
        assert tdx.virtualization_tax > vm.virtualization_tax
        assert tdx.walk_multiplier >= vm.walk_multiplier
        assert tdx.mem_encryption_derate > 0.0
        assert tdx.hugepage_force_thp

    def test_sgx_is_bare_metal_with_crypto(self):
        profile = SGX.cost_profile()
        assert profile.virtualization_tax == 0.0
        assert profile.walk_multiplier == 1.0
        assert profile.mem_encryption_derate > 0.0
        assert profile.exits_per_step > 0
        assert profile.epc_limited

    def test_cgpu_pays_fixed_and_rate_costs(self):
        gpu, cgpu = GPU.cost_profile(), CGPU.cost_profile()
        assert cgpu.step_fixed_s > gpu.step_fixed_s
        assert cgpu.bounce_bw is not None
        assert cgpu.gpu_rate_derate > 0.0

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            CostProfile(mem_encryption_derate=1.5)
        with pytest.raises(ValueError):
            CostProfile(walk_multiplier=0.5)


class TestPolicyResolution:
    def test_tdx_ignores_numa_binding(self):
        assert TDX.resolve_numa_policy(NumaPolicy.BOUND) is NumaPolicy.TDX_DEFAULT

    def test_sgx_single_node(self):
        assert SGX.resolve_numa_policy(NumaPolicy.BOUND) is NumaPolicy.SINGLE_NODE

    def test_vm_honours_binding(self):
        assert VM.resolve_numa_policy(NumaPolicy.BOUND) is NumaPolicy.BOUND

    def test_vm_unbound_interleaves(self):
        assert VM_UNBOUND.resolve_numa_policy(
            NumaPolicy.BOUND) is NumaPolicy.INTERLEAVED

    def test_tdx_downgrades_1g_pages(self):
        assert TDX.resolve_hugepages(
            HugepagePolicy.RESERVED_1G) is HugepagePolicy.TRANSPARENT_2M

    def test_vm_keeps_1g_pages(self):
        assert VM.resolve_hugepages(
            HugepagePolicy.RESERVED_1G) is HugepagePolicy.RESERVED_1G


class TestToggles:
    def test_default_toggles_are_identity(self):
        profile = TDX.cost_profile()
        assert MechanismToggles().apply(profile) == profile

    def test_disable_memory_encryption(self):
        toggled = MechanismToggles(memory_encryption=False).apply(
            TDX.cost_profile())
        assert toggled.mem_encryption_derate == 0.0
        assert toggled.walk_multiplier > 1.0  # others untouched

    def test_disable_nested_walks(self):
        toggled = MechanismToggles(nested_walks=False).apply(TDX.cost_profile())
        assert toggled.walk_multiplier == 1.0

    def test_disable_exits(self):
        toggled = MechanismToggles(enclave_exits=False).apply(SGX.cost_profile())
        assert toggled.exits_per_step == 0.0

    def test_disable_step_fixed(self):
        toggled = MechanismToggles(step_fixed=False).apply(CGPU.cost_profile())
        assert toggled.step_fixed_s == 0.0
