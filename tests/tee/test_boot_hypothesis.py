"""Property-based boot phase machine: conservation, partition, replay.

Generated boot profiles (arbitrary non-negative latency terms and
throughputs) and model sizes must satisfy the invariants the
``attest`` audit family pins on the shipped defaults: phase durations
sum exactly to the ready time, the schedule is monotone and
non-overlapping, any simulated instant lands in exactly one phase, and
the whole machine is a deterministic pure function of its inputs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tee.boot import (
    BOOT_PHASES,
    PHASE_LIVE,
    PROVISIONING,
    BootProfile,
    constant_profile,
)

SECONDS = st.floats(0.0, 60.0, allow_nan=False, allow_infinity=False)
GBPS = st.one_of(st.none(), st.floats(0.1, 50.0))
MODEL_BYTES = st.floats(0.0, 2e11, allow_nan=False, allow_infinity=False)


def profiles():
    return st.builds(
        BootProfile, st.just("tdx"), provision_s=SECONDS, quote_s=SECONDS,
        kms_round_trip_s=st.floats(0.0, 5.0), kms_round_trips=st.integers(0, 8),
        decrypt_gbps=GBPS, load_gbps=GBPS)


def _sequence(profile, model_bytes):
    from repro.tee.boot import BootSequence

    return BootSequence(kind=profile.kind,
                        durations=profile.phase_durations(model_bytes))


@settings(max_examples=120, deadline=None)
@given(profile=profiles(), model_bytes=MODEL_BYTES)
def test_durations_sum_exactly_to_ready_time(profile, model_bytes):
    seq = _sequence(profile, model_bytes)
    assert seq.total_s == sum(seq.durations)
    # Booting at t=0 means ready at total_s: the schedule's last window
    # closes on the ready instant (to float ulps of accumulation).
    windows = seq.schedule(seq.total_s)
    assert windows[0][1] == 0.0
    assert abs(windows[-1][2] - seq.total_s) <= 1e-9


@settings(max_examples=120, deadline=None)
@given(profile=profiles(), model_bytes=MODEL_BYTES,
       ready=st.floats(1.0, 1e4))
def test_schedule_monotone_non_overlapping(profile, model_bytes, ready):
    seq = _sequence(profile, model_bytes)
    windows = seq.schedule(ready)
    assert [phase for phase, _, _ in windows] == list(BOOT_PHASES)
    for (_, _, prev_end), (_, begin, end) in zip(windows, windows[1:]):
        assert begin == prev_end  # contiguous: no gap, no overlap
        assert end >= begin  # monotone: zero-length allowed, never negative


@settings(max_examples=200, deadline=None)
@given(profile=profiles(), model_bytes=MODEL_BYTES,
       fraction=st.floats(0.001, 0.999),
       index=st.integers(0, len(BOOT_PHASES) - 1),
       ready=st.floats(10.0, 1e4))
def test_fault_instant_lands_in_exactly_one_phase(profile, model_bytes,
                                                  fraction, index, ready):
    """A fault strictly inside any phase window hits exactly that phase.

    Windows thinner than the schedule/phase_at float-accumulation skew
    (sub-10us) have no interior an instant can be placed in reliably,
    so the sample set is the nonzero windows — which also checks that
    zero-length phases own no instants.
    """
    seq = _sequence(profile, model_bytes)
    windows = [w for w in seq.schedule(ready) if w[2] - w[1] > 1e-5]
    if not windows:
        assert seq.phase_at(ready, ready) == PHASE_LIVE
        return
    expected, begin, end = windows[index % len(windows)]
    instant = begin + fraction * (end - begin)
    phase = seq.phase_at(instant, ready)
    assert phase == expected
    assert phase in BOOT_PHASES
    # Zero-length phases own no instants.
    assert seq.duration_of(phase) > 0.0
    # ... and the owner is consistent with the remaining-time view.
    assert seq.phase_at_remaining(ready - instant) == phase


@settings(max_examples=120, deadline=None)
@given(profile=profiles(), model_bytes=MODEL_BYTES)
def test_deterministic_replay(profile, model_bytes):
    """The machine is a pure function: same inputs, same sequence."""
    first = _sequence(profile, model_bytes)
    second = _sequence(profile, model_bytes)
    assert first == second
    probe = first.total_s * 0.37
    assert (first.phase_at_remaining(probe)
            == second.phase_at_remaining(probe))


@settings(max_examples=120, deadline=None)
@given(profile=profiles(), model_bytes=MODEL_BYTES)
def test_restart_arithmetic_telescopes(profile, model_bytes):
    seq = _sequence(profile, model_bytes)
    assert seq.remaining_from(PROVISIONING) == seq.total_s
    previous = seq.total_s
    for phase in BOOT_PHASES:
        remaining = seq.remaining_from(phase)
        assert 0.0 <= remaining <= previous
        previous = remaining


@settings(max_examples=60, deadline=None)
@given(total=st.floats(0.0, 300.0, allow_nan=False, allow_infinity=False),
       model_bytes=MODEL_BYTES)
def test_constant_profile_is_degenerate_single_phase(total, model_bytes):
    durations = constant_profile("vm", total).phase_durations(model_bytes)
    assert durations[0] == total
    assert all(d == 0.0 for d in durations[1:])
