"""Projected B100 confidential mode (§V-D3)."""

import pytest

from repro.core.experiment import gpu_deployment
from repro.core.overhead import throughput_overhead
from repro.engine.placement import Workload
from repro.engine.simulator import simulate_generation
from repro.hardware.gpu import B100
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16
from repro.tee.base import backend_by_name


@pytest.fixture(scope="module")
def workload():
    return Workload(LLAMA2_7B, BFLOAT16, batch_size=16, input_tokens=512,
                    output_tokens=32)


class TestB100Backend:
    def test_registered(self):
        backend = backend_by_name("cgpu-b100")
        assert backend.is_tee
        assert backend.device == "gpu"

    def test_profile_adds_hbm_encryption(self):
        h100 = backend_by_name("cgpu").cost_profile()
        b100 = backend_by_name("cgpu-b100").cost_profile()
        assert h100.mem_encryption_derate == 0.0
        assert b100.mem_encryption_derate > 0.0

    def test_security_gaps_closed(self):
        profile = backend_by_name("cgpu-b100").security_profile()
        from repro.tee.security import Support
        assert profile.memory_encrypted is Support.FULL
        assert profile.scale_up_protected is Support.FULL

    def test_tdx_not_stricter_than_b100(self):
        tdx = backend_by_name("tdx").security_profile()
        b100 = backend_by_name("cgpu-b100").security_profile()
        assert not tdx.stricter_than(b100)


class TestB100Projection:
    def test_b100_cc_overhead_exceeds_h100_cc_at_scale(self, workload):
        """The paper expects B100's memory encryption to add a
        non-negligible overhead on top of H100's CC results."""
        gpu = simulate_generation(
            workload, gpu_deployment(confidential=False, gpu=B100))
        cc_no_hbm = simulate_generation(
            workload, gpu_deployment(gpu=B100, backend="cgpu"))
        cc_full = simulate_generation(
            workload, gpu_deployment(gpu=B100, backend="cgpu-b100"))
        without = throughput_overhead(cc_no_hbm, gpu, include_prefill=True)
        with_hbm = throughput_overhead(cc_full, gpu, include_prefill=True)
        assert with_hbm > without + 0.008

    def test_b100_still_practical(self, workload):
        gpu = simulate_generation(
            workload, gpu_deployment(confidential=False, gpu=B100))
        cc = simulate_generation(
            workload, gpu_deployment(gpu=B100, backend="cgpu-b100"))
        assert throughput_overhead(cc, gpu, include_prefill=True) < 0.20

    def test_b100_faster_than_h100(self, workload):
        h100 = simulate_generation(workload, gpu_deployment())
        b100 = simulate_generation(
            workload, gpu_deployment(gpu=B100, backend="cgpu-b100"))
        assert (b100.decode_throughput_tok_s
                > h100.decode_throughput_tok_s)
