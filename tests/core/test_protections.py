"""§II protection-mechanism comparison as checkable logic."""

import pytest

from repro.core.protections import (
    PROTECTIONS,
    Family,
    Protection,
    only_practical_family,
    overhead_gap_vs_he,
    practical_mechanisms,
)


class TestCatalogue:
    def test_three_families_present(self):
        assert {p.family for p in PROTECTIONS} == set(Family)

    def test_ml_methods_are_passive(self):
        """§II: ML methods are post-hoc detection, not active protection."""
        for protection in PROTECTIONS:
            if protection.family is Family.ML_METHOD:
                assert not protection.active_protection
                assert not protection.protects_prompts

    def test_crypto_lacks_integrity(self):
        """§II: HE/MPC do not provide integrity protection; TEEs do."""
        for protection in PROTECTIONS:
            if protection.family is Family.CRYPTOGRAPHIC:
                assert not protection.integrity
            if protection.family is Family.CONFIDENTIAL_COMPUTING:
                assert protection.integrity

    def test_he_overhead_orders_of_magnitude(self):
        he = next(p for p in PROTECTIONS
                  if p.name == "homomorphic-encryption")
        assert he.overhead_factor >= 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Protection("bad", Family.ML_METHOD, overhead_factor=0.5,
                       active_protection=False, protects_prompts=False,
                       integrity=False, needs_retraining=False,
                       general_purpose=False, composable=False)


class TestInsight1:
    def test_only_tees_are_practical(self):
        """The paper's §II conclusion: TEEs are the only viable method."""
        assert only_practical_family() is Family.CONFIDENTIAL_COMPUTING

    def test_practical_set_is_the_two_tees(self):
        names = {p.name for p in practical_mechanisms()}
        assert names == {"cpu-tee", "gpu-tee"}

    def test_gap_vs_he_with_measured_overhead(self):
        """Plugging this reproduction's measured TDX overhead into the
        comparison: TEEs are thousands of times cheaper than HE."""
        from repro.core.experiment import cpu_deployment
        from repro.core.overhead import throughput_overhead
        from repro.engine.placement import Workload
        from repro.engine.simulator import simulate_generation
        from repro.llm.config import LLAMA2_7B
        from repro.llm.datatypes import BFLOAT16
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=1,
                            input_tokens=128, output_tokens=8)
        base = simulate_generation(workload, cpu_deployment(
            "baremetal", sockets_used=1))
        tdx = simulate_generation(workload, cpu_deployment(
            "tdx", sockets_used=1))
        gap = overhead_gap_vs_he(throughput_overhead(tdx, base))
        assert gap > 5000.0

    def test_gap_validation(self):
        with pytest.raises(ValueError):
            overhead_gap_vs_he(-0.1)
