"""Table I rendering."""

import pytest

from repro.core.summary import (
    ALL_SUMMARIES,
    CGPU_SUMMARY,
    SGX_SUMMARY,
    TDX_SUMMARY,
    Trend,
    render_summary_table,
)


class TestTrend:
    def test_valid_symbols(self):
        assert str(Trend(Trend.DOWN)) == "v"
        assert str(Trend(Trend.UP_STRONG)) == "^^"
        assert str(Trend(Trend.DOWN_THEN_UP)) == "v^"

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            Trend("sideways")


class TestSummaries:
    def test_paper_overhead_bands(self):
        assert SGX_SUMMARY.overhead_band == (0.04, 0.05)
        assert TDX_SUMMARY.overhead_band == (0.05, 0.10)
        assert CGPU_SUMMARY.overhead_band == (0.04, 0.08)

    def test_batch_size_lowers_all_overheads(self):
        for summary in ALL_SUMMARIES:
            assert summary.batch_size_trend.symbol == Trend.DOWN

    def test_amx_irrelevant_on_gpu(self):
        assert CGPU_SUMMARY.amx_trend.symbol == Trend.NEUTRAL

    def test_efficiency_split(self):
        """Table I bottom: CPU TEEs win small workloads, cGPU large."""
        assert TDX_SUMMARY.good_for_small_workloads
        assert not TDX_SUMMARY.good_for_large_workloads
        assert CGPU_SUMMARY.good_for_large_workloads
        assert not CGPU_SUMMARY.good_for_small_workloads


class TestRender:
    def test_contains_all_systems(self):
        table = render_summary_table()
        for summary in ALL_SUMMARIES:
            assert summary.system in table

    def test_contains_expected_rows(self):
        table = render_summary_table()
        for row in ("memory protected", "single-resource overhead",
                    "overhead sources", "dev cost"):
            assert row in table

    def test_measured_bands_override(self):
        table = render_summary_table(
            measured_bands={"tdx": (0.07, 0.17)})
        assert "~7-17%" in table

    def test_hbm_gap_visible(self):
        """cGPU's memory row must show no support."""
        table = render_summary_table()
        memory_row = next(line for line in table.splitlines()
                          if line.startswith("memory protected"))
        assert memory_row.rstrip().endswith(".")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_summary_table(())
