"""Sweep edge cases, parallel execution, and cache accounting.

Covers the series extractors on unsorted/missing inputs, monotonicity
tolerance boundaries, deterministic parallel sweep merging, and the
simulator cache counters a sweep is expected to exercise.
"""

import pytest

import numpy as np

from repro.core.experiment import cpu_deployment
from repro.core.profiling import cache_stats
from repro.core.sweep import (
    is_monotonic,
    metric_series,
    overhead_series,
    sweep_deployments,
    sweep_workload,
)
from repro.engine.placement import Workload
from repro.llm.config import tiny_llama
from repro.llm.datatypes import BFLOAT16

TINY = tiny_llama()


@pytest.fixture(scope="module")
def deployments():
    return {
        "baremetal": cpu_deployment("baremetal", sockets_used=1),
        "tdx": cpu_deployment("tdx", sockets_used=1),
    }


@pytest.fixture(scope="module")
def tiny_sweep(deployments):
    base = Workload(TINY, BFLOAT16, batch_size=1, input_tokens=64,
                    output_tokens=8)
    return sweep_workload("edge", base, deployments, "batch_size", [1, 2, 4])


class TestSeriesExtraction:
    def test_overhead_series_missing_label(self, tiny_sweep):
        with pytest.raises(KeyError, match="gpu.*known labels"):
            overhead_series(tiny_sweep, "gpu")

    def test_metric_series_missing_label(self, tiny_sweep):
        with pytest.raises(KeyError, match="known labels"):
            metric_series(tiny_sweep, "sgx")

    def test_overhead_series_invalid_metric(self, tiny_sweep):
        with pytest.raises(ValueError, match="throughput.*latency"):
            overhead_series(tiny_sweep, "tdx", metric="cost")

    def test_metric_series_values(self, tiny_sweep):
        series = metric_series(tiny_sweep, "tdx")
        assert set(series) == {1, 2, 4}
        assert all(value > 0 for value in series.values())


class TestIsMonotonic:
    def test_unsorted_keys_are_sorted_first(self):
        # Insertion order descending; values increase with the key.
        series = {8: 3.0, 2: 1.0, 4: 2.0}
        assert is_monotonic(series, decreasing=False)
        assert not is_monotonic(series, decreasing=True)

    def test_tolerance_boundary_inclusive(self):
        # One counter-move of exactly the tolerance is allowed...
        series = {1: 1.0, 2: 1.1, 3: 1.05}
        assert is_monotonic(series, decreasing=False, tolerance=0.05)
        # ... but anything beyond it is not.
        assert not is_monotonic(series, decreasing=False, tolerance=0.04)

    def test_zero_tolerance_flat_series(self):
        series = {1: 2.0, 2: 2.0, 3: 2.0}
        assert is_monotonic(series, decreasing=True)
        assert is_monotonic(series, decreasing=False)

    def test_single_point_is_monotonic(self):
        assert is_monotonic({5: 1.0})


class TestParallelSweep:
    def test_parallel_matches_serial(self, deployments):
        base = Workload(TINY, BFLOAT16, batch_size=1, input_tokens=64,
                        output_tokens=8)
        serial = sweep_workload("p", base, deployments, "batch_size",
                                [1, 2, 4], seed=3)
        parallel = sweep_workload("p", base, deployments, "batch_size",
                                  [1, 2, 4], seed=3, parallel=True,
                                  max_workers=2)
        assert list(serial) == list(parallel)
        for value in serial:
            for label in deployments:
                np.testing.assert_array_equal(
                    serial[value].results[label].decode_noisy_s,
                    parallel[value].results[label].decode_noisy_s)

    def test_parallel_deployment_sweep(self):
        workload = Workload(TINY, BFLOAT16, batch_size=2, input_tokens=64,
                            output_tokens=8)

        def make(cores):
            return {
                "baremetal": cpu_deployment("baremetal", sockets_used=1,
                                            cores_per_socket_used=cores),
                "tdx": cpu_deployment("tdx", sockets_used=1,
                                      cores_per_socket_used=cores),
            }

        serial = sweep_deployments("cores", workload, make, [8, 16], seed=1)
        parallel = sweep_deployments("cores", workload, make, [8, 16], seed=1,
                                     parallel=True, max_workers=2)
        for value in serial:
            assert serial[value].results["tdx"].decode_time_s \
                == parallel[value].results["tdx"].decode_time_s


class TestSweepCacheAccounting:
    def test_sweep_hits_simulator_caches(self, deployments):
        base = Workload(TINY, BFLOAT16, batch_size=2, input_tokens=96,
                        output_tokens=8)
        sweep_workload("warm", base, deployments, "input_tokens",
                       [96, 128, 160], seed=0)
        # Run the identical sweep again: every step cost is memoized.
        sweep_workload("warm", base, deployments, "input_tokens",
                       [96, 128, 160], seed=0)
        stats = cache_stats()
        assert stats["decode_cost_engine"].hits > 0
        assert stats["prefill_step_cost"].hits > 0
        assert stats["op_graph"].misses > 0
        for name in ("decode_cost_engine", "prefill_step_cost", "op_graph",
                     "affine_decode_graph"):
            assert stats[name].lookups > 0
