"""The 12 paper insights must hold in this reproduction."""

import pytest

from repro.core import insights


@pytest.fixture(scope="module")
def all_checks():
    return insights.verify_all_insights()


class TestAllInsights:
    def test_twelve_checks(self, all_checks):
        assert len(all_checks) == 12
        assert [check.number for check in all_checks] == list(range(1, 13))

    def test_every_insight_holds(self, all_checks):
        failures = [f"#{check.number}: {check.statement} [{check.evidence}]"
                    for check in all_checks if not check.holds]
        assert not failures, "\n".join(failures)

    def test_evidence_is_populated(self, all_checks):
        assert all(check.evidence for check in all_checks)


class TestSelectedEvidence:
    """Spot checks on the quantitative evidence of key insights."""

    def test_insight_4_band(self, all_checks):
        evidence = all_checks[3].evidence
        assert "SGX" in evidence and "TDX" in evidence

    def test_insight_7_mechanism(self):
        check = insights.check_insight_7()
        assert "thp-2m" in check.evidence

    def test_insight_10_decreasing(self):
        check = insights.check_insight_10()
        assert check.holds
        assert "bs=1" in check.evidence
