"""Overhead computation and the experiment runner."""

import pytest

from repro.core.experiment import Experiment, cpu_deployment
from repro.core.overhead import compare, latency_overhead, throughput_overhead
from repro.engine.placement import Workload
from repro.engine.simulator import simulate_generation
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16


@pytest.fixture(scope="module")
def pair():
    workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=1, input_tokens=128,
                        output_tokens=16)
    base = simulate_generation(workload, cpu_deployment("baremetal",
                                                        sockets_used=1))
    tdx = simulate_generation(workload, cpu_deployment("tdx",
                                                       sockets_used=1))
    return base, tdx


class TestOverheads:
    def test_directions(self, pair):
        base, tdx = pair
        assert throughput_overhead(tdx, base) > 0
        assert latency_overhead(tdx, base) > 0

    def test_self_comparison_zero(self, pair):
        base, _ = pair
        assert throughput_overhead(base, base) == 0.0
        assert latency_overhead(base, base, filtered=False) == 0.0

    def test_filtered_close_to_clean(self, pair):
        base, tdx = pair
        filtered = latency_overhead(tdx, base, filtered=True)
        clean = latency_overhead(tdx, base, filtered=False)
        assert filtered == pytest.approx(clean, abs=0.05)

    def test_compare_report(self, pair):
        base, tdx = pair
        report = compare(tdx, base)
        assert report.backend == "tdx"
        assert report.baseline == "baremetal"
        tput_pct, lat_pct = report.as_percent()
        assert tput_pct == pytest.approx(100 * report.throughput_overhead)
        assert lat_pct == pytest.approx(100 * report.latency_overhead)


class TestExperiment:
    @pytest.fixture(scope="class")
    def outcome(self):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=1,
                            input_tokens=128, output_tokens=16)
        experiment = Experiment(
            name="t", workload=workload,
            deployments={
                "baremetal": cpu_deployment("baremetal", sockets_used=1),
                "tdx": cpu_deployment("tdx", sockets_used=1),
            })
        return experiment.run()

    def test_all_labels_present(self, outcome):
        assert set(outcome.results) == {"baremetal", "tdx"}

    def test_overhead_vs_baseline(self, outcome):
        assert outcome.overhead("tdx").throughput_overhead > 0

    def test_rows_table(self, outcome):
        rows = outcome.rows()
        assert len(rows) == 2
        tdx_row = next(row for row in rows if row["label"] == "tdx")
        assert tdx_row["throughput_overhead_pct"] > 0
        assert tdx_row["next_token_latency_ms"] > 0

    def test_missing_baseline_rejected(self):
        workload = Workload(LLAMA2_7B, BFLOAT16, output_tokens=16)
        experiment = Experiment(
            name="bad", workload=workload,
            deployments={"tdx": cpu_deployment("tdx", sockets_used=1)})
        with pytest.raises(ValueError, match="baseline"):
            experiment.run()

    def test_unknown_label(self, outcome):
        with pytest.raises(KeyError):
            outcome.overhead("sev")
