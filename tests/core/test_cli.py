"""CLI entry point (python -m repro)."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_threats_matrix(self, capsys):
        assert main(["threats"]) == 0
        out = capsys.readouterr().out
        assert "memory-scrape" in out
        assert "cgpu" in out

    def test_insights_exit_code(self, capsys):
        assert main(["insights"]) == 0
        out = capsys.readouterr().out
        assert "[ok  ]" in out
        assert "FAIL" not in out

    def test_report(self, capsys):
        assert main(["report", "--output-tokens", "16"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "tdx" in out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
