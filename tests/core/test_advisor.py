"""Deployment advisor logic."""

import pytest

from repro.core.advisor import Requirements, recommend
from repro.engine.placement import Workload
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16


def workload(batch=1, input_tokens=128):
    return Workload(LLAMA2_7B, BFLOAT16, batch_size=batch,
                    input_tokens=input_tokens, output_tokens=16)


class TestRequirements:
    def test_defaults_use_reading_speed_sla(self):
        assert Requirements().max_latency_s == pytest.approx(0.200)

    def test_validation(self):
        with pytest.raises(ValueError):
            Requirements(max_latency_s=0.0)
        with pytest.raises(ValueError):
            Requirements(max_dev_effort=5)


class TestRecommend:
    def test_small_workload_picks_cpu_tee(self):
        """Insight 11: small batch/input -> CPU TEE wins on cost."""
        result = recommend(workload(batch=1))
        assert result.best.backend in ("sgx", "tdx")
        assert result.best.meets_sla

    def test_large_workload_picks_cgpu(self):
        """High intensity -> the cGPU wins on $/Mtok."""
        result = recommend(workload(batch=64, input_tokens=1024))
        assert result.best.backend == "cgpu"

    def test_hard_security_requirement_excludes_cgpu(self):
        result = recommend(
            workload(batch=64, input_tokens=1024),
            Requirements(require_encrypted_accelerator_memory=True))
        assert result.best.backend in ("sgx", "tdx")
        cgpu = next(c for c in result.candidates if c.backend == "cgpu")
        assert cgpu.disqualified == "accelerator memory unencrypted"

    def test_dev_effort_cap_excludes_sgx(self):
        result = recommend(workload(), Requirements(max_dev_effort=1))
        sgx_candidates = [c for c in result.candidates
                          if c.backend == "sgx"]
        assert all(c.disqualified for c in sgx_candidates)
        assert result.best.backend != "sgx"

    def test_all_candidates_reported(self):
        result = recommend(workload())
        backends = {c.backend for c in result.candidates}
        assert backends == {"sgx", "tdx", "cgpu"}
        # Several core counts evaluated per CPU backend.
        assert sum(1 for c in result.candidates if c.backend == "tdx") == 3

    def test_rationale_mentions_winner(self):
        result = recommend(workload())
        assert result.best.backend in result.rationale

    def test_security_coverage_populated(self):
        result = recommend(workload())
        for candidate in result.candidates:
            if candidate.backend in ("sgx", "tdx"):
                assert candidate.security_coverage == 1.0
            else:
                assert candidate.security_coverage < 1.0
