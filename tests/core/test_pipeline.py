"""End-to-end confidential pipeline: config, attestation, serving."""

import pytest

from repro.core.experiment import cpu_deployment
from repro.core.pipeline import ConfidentialPipeline, stream_cipher
from repro.engine.placement import Workload
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16
from repro.tee.gramine import GramineManifest
from repro.tee.qemu import TdxVmConfig


@pytest.fixture
def workload():
    return Workload(LLAMA2_7B, BFLOAT16, batch_size=1, input_tokens=64,
                    output_tokens=8)


def make_pipeline(backend, workload, **kwargs):
    return ConfidentialPipeline(
        cpu_deployment(backend, sockets_used=1, **kwargs), workload)


class TestStreamCipher:
    def test_round_trip(self):
        data = b"confidential model weights" * 10
        key = b"k" * 32
        assert stream_cipher(stream_cipher(data, key), key) == data

    def test_wrong_key_garbles(self):
        data = b"secret"
        assert stream_cipher(stream_cipher(data, b"a"), b"b") != data

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            stream_cipher(b"x", b"")

    def test_ciphertext_differs_from_plaintext(self):
        data = b"0" * 256
        assert stream_cipher(data, b"key") != data


class TestConfigArtifacts:
    def test_sgx_gets_manifest(self, workload):
        config = make_pipeline("sgx", workload).build_config()
        assert isinstance(config, GramineManifest)
        config.validate()

    def test_tdx_gets_vm_definition(self, workload):
        config = make_pipeline("tdx", workload,
                               cores_per_socket_used=32).build_config()
        assert isinstance(config, TdxVmConfig)
        assert config.vcpus == 32
        assert config.luks_encrypted

    def test_baremetal_needs_none(self, workload):
        assert make_pipeline("baremetal", workload).build_config() is None


class TestProvisioning:
    def test_tdx_provisions(self, workload):
        pipeline = make_pipeline("tdx", workload)
        report = pipeline.provision()
        assert report.attested
        assert report.backend == "tdx"
        assert "<launchSecurity type='tdx'/>" in report.config_artifact

    def test_sgx_provisions_with_manifest_artifact(self, workload):
        report = make_pipeline("sgx", workload).provision()
        assert "sgx.enclave_size" in report.config_artifact

    def test_non_tee_refused(self, workload):
        with pytest.raises(PermissionError, match="cannot attest"):
            make_pipeline("baremetal", workload).provision()

    def test_wrong_measurement_refused(self, workload):
        pipeline = make_pipeline("tdx", workload)
        with pytest.raises(PermissionError):
            pipeline.provision(expected_measurement="0" * 96)


class TestServing:
    def test_generate_before_provision_rejected(self, workload):
        with pytest.raises(RuntimeError, match="provision"):
            make_pipeline("tdx", workload).generate("hello")

    def test_generate_end_to_end(self, workload):
        pipeline = make_pipeline("tdx", workload)
        pipeline.provision()
        response = pipeline.generate("summarize the patient record",
                                     max_new_tokens=4)
        assert len(response.text_tokens) == 4
        assert response.estimated_latency_ms > 0
        assert response.performance.backend_name == "tdx"

    def test_generation_deterministic(self, workload):
        pipeline = make_pipeline("tdx", workload)
        pipeline.provision()
        a = pipeline.generate("same prompt", max_new_tokens=3)
        b = pipeline.generate("same prompt", max_new_tokens=3)
        assert a.text_tokens == b.text_tokens
