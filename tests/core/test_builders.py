"""Deployment builder helpers."""

import pytest

from repro.core.experiment import cpu_deployment, gpu_deployment
from repro.frameworks.base import IPEX, VLLM_GPU
from repro.hardware.cpu import EMR1, EMR2
from repro.hardware.gpu import B100, H100_NVL
from repro.memsim.pages import HugepagePolicy


class TestCpuDeployment:
    def test_defaults(self):
        deployment = cpu_deployment()
        assert deployment.backend.name == "baremetal"
        assert deployment.framework is IPEX
        assert deployment.placement.cpu is EMR2

    def test_placement_kwargs_forwarded(self):
        deployment = cpu_deployment(
            "tdx", cpu=EMR1, sockets_used=2, cores_per_socket_used=16,
            hugepages=HugepagePolicy.RESERVED_1G, snc_clusters=2,
            amx_enabled=False)
        placement = deployment.placement
        assert placement.cpu is EMR1
        assert placement.cores == 32
        assert placement.snc_clusters == 2
        assert not placement.amx_enabled

    def test_framework_instance_accepted(self):
        deployment = cpu_deployment(framework=IPEX)
        assert deployment.framework is IPEX

    def test_unknown_backend(self):
        with pytest.raises(KeyError):
            cpu_deployment("sev-snp")

    def test_bad_placement_kwarg(self):
        with pytest.raises(TypeError):
            cpu_deployment(gpu_count=2)


class TestGpuDeployment:
    def test_confidential_flag(self):
        assert gpu_deployment(confidential=True).backend.name == "cgpu"
        assert gpu_deployment(confidential=False).backend.name == "gpu"

    def test_explicit_backend_overrides_flag(self):
        deployment = gpu_deployment(confidential=False, backend="cgpu-b100")
        assert deployment.backend.name == "cgpu-b100"

    def test_gpu_selection(self):
        assert gpu_deployment(gpu=B100).placement.gpu is B100
        assert gpu_deployment().placement.gpu is H100_NVL

    def test_framework_default(self):
        assert gpu_deployment().framework is VLLM_GPU

    def test_cpu_backend_rejected_on_gpu(self):
        with pytest.raises(ValueError, match="backend"):
            gpu_deployment(backend="tdx")
