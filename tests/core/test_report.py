"""Markdown report generation."""

import pytest

from repro.core.experiment import Experiment, cpu_deployment
from repro.core.report import (
    experiment_section,
    insights_section,
    markdown_table,
)
from repro.engine.placement import Workload
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16


class TestMarkdownTable:
    def test_structure(self):
        table = markdown_table([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.25}])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "2.50" in lines[2]

    def test_column_selection(self):
        table = markdown_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in table.splitlines()[0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            markdown_table([])


class TestSections:
    def test_experiment_section(self):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=1,
                            input_tokens=128, output_tokens=8)
        outcome = Experiment(
            name="report-test", workload=workload,
            deployments={
                "baremetal": cpu_deployment("baremetal", sockets_used=1),
                "tdx": cpu_deployment("tdx", sockets_used=1),
            }).run()
        section = experiment_section(outcome)
        assert "### report-test" in section
        assert "| label |" in section
        assert "tdx" in section

    def test_insights_section_lists_all_twelve(self):
        section = insights_section()
        for number in range(1, 13):
            assert f"\n{number}. " in section or section.startswith(f"{number}. ")
        assert "FAILS" not in section
