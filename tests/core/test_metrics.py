"""Measurement metrics: Z-score filter, latency stats, throughput."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.metrics import (
    HUMAN_READING_LATENCY_S,
    geometric_mean,
    latency_stats,
    outlier_fraction,
    throughput_from_latencies,
    zscore_filter,
)

positive_samples = hnp.arrays(
    dtype=np.float64, shape=st.integers(min_value=2, max_value=200),
    elements=st.floats(min_value=0.001, max_value=10.0, allow_nan=False))


class TestZscoreFilter:
    def test_keeps_clean_data(self):
        samples = np.array([1.0, 1.1, 0.9, 1.05, 0.95])
        assert zscore_filter(samples).size == 5

    def test_drops_spike(self):
        samples = np.concatenate([np.full(200, 1.0)
                                  + np.linspace(-0.01, 0.01, 200), [50.0]])
        kept = zscore_filter(samples)
        assert kept.size == 200
        assert 50.0 not in kept

    def test_constant_data_kept(self):
        samples = np.full(10, 2.0)
        assert zscore_filter(samples).size == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            zscore_filter(np.array([]))

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            zscore_filter(np.ones(3), threshold=0.0)

    @settings(max_examples=50, deadline=None)
    @given(positive_samples)
    def test_filter_is_idempotent_on_survivors_mean(self, samples):
        """Filtering never removes more than it should: survivors are a
        subset and their mean is finite."""
        kept = zscore_filter(samples)
        assert 0 < kept.size <= samples.size
        assert np.isfinite(kept.mean())

    def test_outlier_fraction_matches(self):
        samples = np.concatenate([np.full(999, 1.0)
                                  + np.linspace(-0.01, 0.01, 999), [100.0]])
        assert outlier_fraction(samples) == pytest.approx(1 / 1000)


class TestLatencyStats:
    def test_summary_fields(self):
        samples = np.array([0.05, 0.06, 0.055, 0.052])
        stats = latency_stats(samples)
        assert stats.mean_s == pytest.approx(samples.mean(), rel=1e-6)
        assert stats.samples == 4
        assert stats.p95_s >= stats.median_s

    def test_meets_reading_speed(self):
        fast = latency_stats(np.full(10, 0.08))
        slow = latency_stats(np.full(10, 0.5))
        assert fast.meets_reading_speed
        assert not slow.meets_reading_speed
        assert HUMAN_READING_LATENCY_S == 0.2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            latency_stats(np.array([0.1, -0.1]))

    def test_outliers_removed_recorded(self):
        samples = np.concatenate([np.full(500, 0.05)
                                  + np.linspace(0, 0.001, 500), [5.0]])
        stats = latency_stats(samples)
        assert stats.outliers_removed > 0
        assert stats.mean_s < 0.06


class TestThroughput:
    def test_inverse_of_latency_times_batch(self):
        samples = np.full(100, 0.05)
        assert throughput_from_latencies(samples, sequences=6) == \
            pytest.approx(120.0)

    def test_sequences_positive(self):
        with pytest.raises(ValueError):
            throughput_from_latencies(np.ones(3), sequences=0)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])
