"""Sweep runner and series extraction."""

import pytest

from repro.core.experiment import cpu_deployment
from repro.core.sweep import (
    is_monotonic,
    metric_series,
    overhead_series,
    sweep_deployments,
    sweep_workload,
)
from repro.engine.placement import Workload
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16


@pytest.fixture(scope="module")
def deployments():
    return {
        "baremetal": cpu_deployment("baremetal", sockets_used=1),
        "tdx": cpu_deployment("tdx", sockets_used=1),
    }


@pytest.fixture(scope="module")
def batch_sweep(deployments):
    base = Workload(LLAMA2_7B, BFLOAT16, batch_size=1, input_tokens=128,
                    output_tokens=16)
    return sweep_workload("t", base, deployments, "batch_size", [1, 8, 64])


class TestSweepWorkload:
    def test_one_outcome_per_value(self, batch_sweep):
        assert set(batch_sweep) == {1, 8, 64}

    def test_workloads_differ(self, batch_sweep):
        assert batch_sweep[8].workload.batch_size == 8

    def test_empty_values_rejected(self, deployments):
        with pytest.raises(ValueError):
            sweep_workload("t", Workload(LLAMA2_7B, BFLOAT16), deployments,
                           "batch_size", [])


class TestSweepDeployments:
    def test_core_sweep(self):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=4,
                            input_tokens=128, output_tokens=8)

        def make(cores):
            return {
                "baremetal": cpu_deployment("baremetal", sockets_used=1,
                                            cores_per_socket_used=cores),
                "tdx": cpu_deployment("tdx", sockets_used=1,
                                      cores_per_socket_used=cores),
            }

        outcomes = sweep_deployments("cores", workload, make, [8, 32])
        tput = metric_series(outcomes, "baremetal")
        assert tput[32] > tput[8]


class TestSeries:
    def test_overhead_series(self, batch_sweep):
        series = overhead_series(batch_sweep, "tdx", metric="throughput")
        assert set(series) == {1, 8, 64}
        assert all(value > 0 for value in series.values())

    def test_overhead_series_bad_metric(self, batch_sweep):
        with pytest.raises(ValueError):
            overhead_series(batch_sweep, "tdx", metric="energy")

    def test_metric_series(self, batch_sweep):
        series = metric_series(batch_sweep, "baremetal",
                               "decode_throughput_tok_s")
        assert series[64] > series[1]

    def test_overhead_decreases_with_batch(self, batch_sweep):
        """Insight 9 at sweep level."""
        series = overhead_series(batch_sweep, "tdx")
        assert series[64] < series[1]


class TestMonotonic:
    def test_decreasing(self):
        assert is_monotonic({1: 3.0, 2: 2.0, 3: 1.0}, decreasing=True)
        assert not is_monotonic({1: 1.0, 2: 2.0}, decreasing=True)

    def test_increasing(self):
        assert is_monotonic({1: 1.0, 2: 2.0}, decreasing=False)

    def test_tolerance(self):
        wiggly = {1: 3.0, 2: 3.05, 3: 1.0}
        assert not is_monotonic(wiggly, decreasing=True)
        assert is_monotonic(wiggly, decreasing=True, tolerance=0.1)

    def test_unordered_keys_sorted(self):
        assert is_monotonic({3: 1.0, 1: 3.0, 2: 2.0}, decreasing=True)
