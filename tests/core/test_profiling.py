"""Memo caches and the profiling layer."""

import pytest

from repro.core import profiling
from repro.memo import MemoCache, all_cache_stats, registered_caches


@pytest.fixture
def cache():
    name = "test-cache-profiling"
    registered = registered_caches()
    if name in registered:
        registered[name].clear()
        return registered[name]
    return MemoCache(name, maxsize=3)


class TestMemoCache:
    def test_miss_then_hit(self, cache):
        calls = []
        for _ in range(3):
            value = cache.get_or_compute("k", lambda: calls.append(1) or 42)
        assert value == 42
        assert calls == [1]
        assert cache.stats().hits == 2
        assert cache.stats().misses == 1

    def test_lru_eviction(self, cache):
        for key in "abcd":  # maxsize 3: "a" evicted
            cache.get_or_compute(key, lambda k=key: k.upper())
        assert "a" not in cache
        assert "d" in cache
        assert cache.stats().evictions == 1

    def test_hit_refreshes_recency(self, cache):
        for key in "abc":
            cache.get_or_compute(key, lambda k=key: k)
        cache.get_or_compute("a", lambda: "recomputed")  # hit, refresh
        cache.get_or_compute("d", lambda: "d")           # evicts "b"
        assert "a" in cache
        assert "b" not in cache

    def test_clear_resets(self, cache):
        cache.get_or_compute("x", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().lookups == 0

    def test_hit_rate(self, cache):
        assert cache.stats().hit_rate == 0.0
        cache.get_or_compute("x", lambda: 1)
        cache.get_or_compute("x", lambda: 1)
        assert cache.stats().hit_rate == 0.5

    def test_duplicate_name_rejected(self, cache):
        with pytest.raises(ValueError, match="duplicate"):
            MemoCache(cache.name)


class TestProfilingFrontDoor:
    def test_simulator_caches_registered(self):
        stats = profiling.cache_stats()
        for name in ("op_graph", "affine_decode_graph", "decode_cost_engine",
                     "prefill_step_cost", "decode_step_cost"):
            assert name in stats

    def test_cache_report_mentions_every_cache(self):
        report = profiling.cache_report()
        assert "decode_cost_engine" in report
        assert "hit_rate" in report

    def test_global_stats_match_cache_view(self, cache):
        cache.get_or_compute("y", lambda: 2)
        assert all_cache_stats()[cache.name] == cache.stats()


class TestTimers:
    def test_timed_accumulates(self):
        profiling.reset_timers()
        for _ in range(3):
            with profiling.timed("region"):
                pass
        stat = profiling.timer_stats()["region"]
        assert stat.calls == 3
        assert stat.total_s >= 0.0
        assert stat.mean_s == pytest.approx(stat.total_s / 3)

    def test_reset_timers(self):
        with profiling.timed("gone"):
            pass
        profiling.reset_timers()
        assert profiling.timer_stats() == {}
