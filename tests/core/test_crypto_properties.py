"""Property-based tests for the crypto primitives (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.pipeline import stream_cipher
from repro.tee.attestation import measure


class TestStreamCipherProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.binary(max_size=512), st.binary(min_size=1, max_size=64))
    def test_round_trip(self, data, key):
        assert stream_cipher(stream_cipher(data, key), key) == data

    @settings(max_examples=50, deadline=None)
    @given(st.binary(min_size=1, max_size=256),
           st.binary(min_size=1, max_size=32),
           st.binary(min_size=1, max_size=32))
    def test_wrong_key_fails_to_decrypt(self, data, key_a, key_b):
        if key_a[:64] == key_b[:64]:
            return
        garbled = stream_cipher(stream_cipher(data, key_a), key_b)
        # With overwhelming probability the plaintext does not survive.
        assert garbled != data or len(data) == 0

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=64, max_size=256),
           st.binary(min_size=1, max_size=32))
    def test_ciphertext_length_preserved(self, data, key):
        assert len(stream_cipher(data, key)) == len(data)

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=128, max_size=256),
           st.binary(min_size=1, max_size=32))
    def test_keystream_not_repeating_across_blocks(self, data, key):
        """Equal plaintext blocks must not produce equal ciphertext
        blocks (the counter must enter the keystream)."""
        plaintext = bytes(64) + bytes(64)  # two identical zero blocks
        ciphertext = stream_cipher(plaintext, key)
        assert ciphertext[:64] != ciphertext[64:128]


class TestMeasurementProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.dictionaries(st.text(min_size=1, max_size=16),
                           st.binary(max_size=64), min_size=1, max_size=5))
    def test_deterministic_and_order_free(self, artifacts):
        reordered = dict(reversed(list(artifacts.items())))
        assert measure(artifacts) == measure(reordered)

    @settings(max_examples=50, deadline=None)
    @given(st.dictionaries(st.text(min_size=1, max_size=16),
                           st.binary(max_size=64), min_size=1, max_size=5),
           st.binary(min_size=1, max_size=16))
    def test_any_content_change_changes_measurement(self, artifacts, extra):
        name = next(iter(artifacts))
        tampered = dict(artifacts)
        tampered[name] = artifacts[name] + extra
        assert measure(artifacts) != measure(tampered)

    def test_fixed_width_hex(self):
        assert len(measure({"a": b"x"})) == 96  # SHA-384 hex
