"""Steppable-scheduler contract: step() == run(), preemption recompute.

The fleet simulator drives replicas through ``submit``/``step`` with a
shared-clock horizon; ``run`` is the run-to-completion wrapper.  Both
must produce bit-identical timelines for any stream and any stepping
cadence — these tests pin that, plus coverage of the preempt-and-
recompute path the single-pass tests only graze.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.experiment import cpu_deployment
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16
from repro.serving.scheduler import (
    ContinuousBatchingScheduler,
    ServeRequest,
    poisson_stream,
)


def make_scheduler(kv_tokens=4096, max_batch=4, lookahead=0):
    deployment = cpu_deployment("tdx", sockets_used=1)
    return ContinuousBatchingScheduler(deployment, LLAMA2_7B, BFLOAT16,
                                       kv_capacity_tokens=kv_tokens,
                                       max_batch=max_batch,
                                       admission_lookahead=lookahead)


def run_stepped(requests, horizon_s, **kwargs):
    """Serve via submit + fixed-cadence step calls, then report."""
    scheduler = make_scheduler(**kwargs)
    for request in requests:
        scheduler.submit(request)
    clock = 0.0
    finished = []
    while not scheduler.idle:
        clock += horizon_s
        finished.extend(scheduler.step(clock))
    report = scheduler.report()
    return scheduler, report, finished


def assert_reports_identical(a, b):
    assert len(a.outcomes) == len(b.outcomes)
    for x, y in zip(a.outcomes, b.outcomes):
        assert x.request == y.request
        assert x.first_token_s == y.first_token_s  # exact, not approx
        assert x.finish_s == y.finish_s
        assert x.preemptions == y.preemptions
    assert a.makespan_s == b.makespan_s
    assert a.start_s == b.start_s
    assert a.total_preemptions == b.total_preemptions
    assert a.mean_batch_occupancy == b.mean_batch_occupancy


# Request-stream generator in the style of the KV-cache property tests:
# arbitrary shapes and staggered arrivals, all feasible for the pool.
streams = st.lists(
    st.tuples(st.floats(0.0, 5.0, allow_nan=False, allow_infinity=False),
              st.integers(16, 400), st.integers(8, 80)),
    min_size=1, max_size=12,
)


class TestStepRunParity:
    @settings(max_examples=12, deadline=None)
    @given(shapes=streams, horizon=st.sampled_from([0.05, 0.4, 2.5]))
    def test_any_stream_any_cadence_matches_run(self, shapes, horizon):
        requests = [ServeRequest(i, arrival, prompt, output)
                    for i, (arrival, prompt, output) in enumerate(shapes)]
        run_report = make_scheduler().run(requests)
        _, step_report, _ = run_stepped(requests, horizon)
        assert_reports_identical(run_report, step_report)

    def test_parity_under_preemption_pressure(self):
        """Cadence-independence holds through preempt/recompute storms."""
        requests = [ServeRequest(i, 0.05 * i, 300, 100) for i in range(8)]
        run_report = make_scheduler(kv_tokens=2048, max_batch=8).run(requests)
        assert run_report.total_preemptions > 0
        for horizon in (0.1, 1.0, 7.0):
            _, step_report, _ = run_stepped(requests, horizon,
                                            kv_tokens=2048, max_batch=8)
            assert_reports_identical(run_report, step_report)

    def test_step_returns_each_outcome_exactly_once(self):
        requests = poisson_stream(15, rate_per_s=4.0, mean_prompt=64,
                                  mean_output=16, seed=6)
        _, report, finished = run_stepped(requests, 0.5)
        assert sorted(o.request.request_id for o in finished) == \
            sorted(o.request.request_id for o in report.outcomes)

    def test_step_respects_horizon_when_idle(self):
        """An idle replica's clock never jumps past a future arrival."""
        scheduler = make_scheduler()
        scheduler.submit(ServeRequest(0, 10.0, 64, 8))
        assert scheduler.step(5.0) == []
        assert scheduler.clock_s < 10.0  # did not admit future work
        scheduler.step(50.0)
        assert scheduler.idle
        outcome = scheduler.report().outcomes[0]
        assert outcome.first_token_s >= 10.0

    def test_advance_clock_never_rewinds(self):
        scheduler = make_scheduler()
        scheduler.advance_clock_to(4.0)
        scheduler.advance_clock_to(1.0)
        assert scheduler.clock_s == 4.0

    def test_duplicate_submit_rejected(self):
        scheduler = make_scheduler()
        scheduler.submit(ServeRequest(1, 0.0, 64, 8))
        with pytest.raises(ValueError, match="already"):
            scheduler.submit(ServeRequest(1, 1.0, 64, 8))


class TestPreemptionRecompute:
    def test_preempted_request_recomputes_full_context(self):
        """A preempted sequence restarts from zero generated tokens and
        still produces its full output."""
        scheduler = make_scheduler(kv_tokens=1024, max_batch=4)
        requests = [ServeRequest(i, 0.0, 180, 90) for i in range(4)]
        report = scheduler.run(requests)
        assert report.total_preemptions > 0
        preempted = [o for o in report.outcomes if o.preemptions > 0]
        assert preempted
        for outcome in preempted:
            # Recompute means the victim finishes after a non-preempted
            # peer that arrived at the same time.
            assert outcome.finish_s >= min(o.finish_s
                                           for o in report.outcomes)
        assert scheduler.cache.allocated_blocks == 0

    def test_preemption_counts_conserved_across_step_cadences(self):
        requests = [ServeRequest(i, 0.0, 200, 120) for i in range(8)]
        base = make_scheduler(kv_tokens=2048, max_batch=8).run(requests)
        _, stepped, _ = run_stepped(requests, 0.25, kv_tokens=2048,
                                    max_batch=8)
        assert stepped.total_preemptions == base.total_preemptions
        assert (sum(o.preemptions for o in stepped.outcomes)
                == stepped.total_preemptions)


class TestSatelliteRegressions:
    def test_makespan_measured_from_first_arrival(self):
        """Idle lead time before the first arrival must not count as
        serving time (it used to deflate throughput)."""
        late = [ServeRequest(0, 100.0, 128, 32)]
        report = make_scheduler(kv_tokens=100_000).run(late)
        assert report.start_s == 100.0
        assert report.makespan_s < 50.0  # service time, not clock-0 offset
        early_report = make_scheduler(kv_tokens=100_000).run(
            [ServeRequest(0, 0.0, 128, 32)])
        # Shifting the stream in time must not change throughput.
        assert report.throughput_tok_s == pytest.approx(
            early_report.throughput_tok_s, rel=1e-12)

    def test_percentile_linear_interpolation(self):
        """p50 of two values is their midpoint, not an endpoint."""
        from repro.serving.scheduler import _percentile
        assert _percentile([1.0, 3.0], 50) == pytest.approx(2.0)
        assert _percentile([1.0, 2.0, 4.0], 75) == pytest.approx(3.0)
        assert _percentile([5.0], 99) == 5.0
        values = [0.7, 1.9, 3.1, 4.0, 8.5]
        numpy = pytest.importorskip("numpy")
        for p in (0, 10, 25, 50, 73, 90, 99, 100):
            assert _percentile(values, p) == pytest.approx(
                float(numpy.percentile(values, p)), rel=1e-12)

    def test_head_of_line_blocking_is_fcfs_by_default(self):
        """Admission breaks on the first KV-allocation failure even when
        a smaller queued request would fit (documented FCFS policy)."""
        # Pool of 512 tokens; a 400-token head with a 64-token request
        # queued behind it.  Admit the head, then a second 400-token
        # head blocks while the 64-token one waits behind it.
        requests = [ServeRequest(0, 0.0, 300, 60),
                    ServeRequest(1, 0.0, 300, 60),
                    ServeRequest(2, 0.0, 32, 8)]
        fcfs = make_scheduler(kv_tokens=512, max_batch=4).run(requests)
        small_fcfs = next(o for o in fcfs.outcomes
                          if o.request.request_id == 2)
        # Strict FCFS: the small request cannot jump the blocked head.
        blocked_head = next(o for o in fcfs.outcomes
                            if o.request.request_id == 1)
        assert small_fcfs.first_token_s > blocked_head.request.arrival_s

        look = make_scheduler(kv_tokens=512, max_batch=4,
                              lookahead=4).run(requests)
        small_look = next(o for o in look.outcomes
                          if o.request.request_id == 2)
        # Bounded lookahead admits the small request earlier.
        assert small_look.first_token_s < small_fcfs.first_token_s
        assert all(o.finish_s > 0 for o in look.outcomes)

    def test_lookahead_zero_matches_legacy_exactly(self):
        requests = poisson_stream(12, 3.0, mean_prompt=96, mean_output=24,
                                  seed=8)
        a = make_scheduler(kv_tokens=1024).run(requests)
        b = make_scheduler(kv_tokens=1024, lookahead=0).run(requests)
        assert [o.finish_s for o in a.outcomes] == \
            [o.finish_s for o in b.outcomes]

    def test_lookahead_validation(self):
        with pytest.raises(ValueError, match="admission_lookahead"):
            make_scheduler(lookahead=-1)
