"""Continuous-batching scheduler: completeness, conservation, SLAs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.experiment import cpu_deployment, gpu_deployment
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16
from repro.serving.scheduler import (
    ContinuousBatchingScheduler,
    ServeRequest,
    poisson_stream,
)


def make_scheduler(kv_tokens=100_000, max_batch=16, backend="tdx"):
    if backend in ("gpu", "cgpu"):
        deployment = gpu_deployment(confidential=backend == "cgpu")
    else:
        deployment = cpu_deployment(backend, sockets_used=1)
    return ContinuousBatchingScheduler(deployment, LLAMA2_7B, BFLOAT16,
                                       kv_capacity_tokens=kv_tokens,
                                       max_batch=max_batch)


class TestBasicServing:
    @pytest.fixture(scope="class")
    def report(self):
        requests = poisson_stream(20, rate_per_s=4.0, mean_prompt=128,
                                  mean_output=32, seed=2)
        return make_scheduler().run(requests)

    def test_all_requests_complete(self, report):
        assert len(report.outcomes) == 20
        assert all(o.finish_s > 0 for o in report.outcomes)

    def test_timeline_consistent(self, report):
        for outcome in report.outcomes:
            assert (outcome.request.arrival_s <= outcome.first_token_s
                    <= outcome.finish_s)

    def test_throughput_positive(self, report):
        assert report.throughput_tok_s > 0

    def test_percentiles_ordered(self, report):
        assert (report.ttft_percentile(50) <= report.ttft_percentile(95))
        assert (report.e2e_percentile(50) <= report.e2e_percentile(95))

    def test_occupancy_within_cap(self, report):
        assert 0 < report.mean_batch_occupancy <= 16


class TestKvConservation:
    def test_cache_empty_after_run(self):
        scheduler = make_scheduler()
        scheduler.run(poisson_stream(10, rate_per_s=5.0, mean_prompt=64,
                                     mean_output=16, seed=3))
        assert scheduler.cache.allocated_blocks == 0

    def test_preemption_under_memory_pressure(self):
        """A tight KV pool forces preemptions, yet everything finishes."""
        scheduler = make_scheduler(kv_tokens=2048, max_batch=8)
        requests = [ServeRequest(i, 0.0, prompt_tokens=200,
                                 output_tokens=120) for i in range(8)]
        report = scheduler.run(requests)
        assert report.total_preemptions > 0
        assert all(o.finish_s > 0 for o in report.outcomes)
        assert scheduler.cache.allocated_blocks == 0

    def test_impossible_request_rejected(self):
        scheduler = make_scheduler(kv_tokens=256)
        with pytest.raises(ValueError, match="KV tokens"):
            scheduler.run([ServeRequest(0, 0.0, 500, 100)])


class TestRequestValidation:
    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            ServeRequest(0, -1.0, 16, 16)

    def test_nonfinite_arrival_rejected(self):
        # Regression: nan < 0 is False, so a NaN arrival used to pass
        # validation and poison every downstream timeline metric.
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError, match="finite"):
                ServeRequest(0, bad, 16, 16)

    def test_nonfinite_token_counts_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            ServeRequest(0, 0.0, float("nan"), 16)
        with pytest.raises(ValueError, match="finite"):
            ServeRequest(0, 0.0, 16, float("inf"))


class TestBackendComparison:
    def test_gpu_serves_faster_than_cpu_tee(self):
        requests = poisson_stream(10, rate_per_s=10.0, mean_prompt=128,
                                  mean_output=32, seed=4)
        tdx = make_scheduler(backend="tdx").run(requests)
        cgpu = make_scheduler(backend="cgpu").run(requests)
        assert cgpu.throughput_tok_s > tdx.throughput_tok_s
        assert cgpu.ttft_percentile(95) < tdx.ttft_percentile(95)

    def test_tee_overhead_visible_in_serving(self):
        requests = poisson_stream(8, rate_per_s=10.0, mean_prompt=128,
                                  mean_output=32, seed=5)
        base = make_scheduler(backend="baremetal").run(requests)
        tdx = make_scheduler(backend="tdx").run(requests)
        ratio = tdx.makespan_s / base.makespan_s
        assert 1.0 < ratio < 1.3


class TestStreamGenerator:
    def test_deterministic(self):
        assert poisson_stream(5, 1.0, seed=9) == poisson_stream(5, 1.0, seed=9)

    def test_arrivals_increase(self):
        stream = poisson_stream(50, 2.0, seed=1)
        arrivals = [r.arrival_s for r in stream]
        assert arrivals == sorted(arrivals)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_stream(0, 1.0)
        with pytest.raises(ValueError):
            poisson_stream(5, 0.0)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            ServeRequest(0, -1.0, 10, 10)
        with pytest.raises(ValueError):
            ServeRequest(0, 0.0, 0, 10)


class TestSchedulerProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(16, 300), st.integers(8, 60)),
        min_size=1, max_size=10))
    def test_any_mix_completes_and_conserves(self, shapes):
        """Any feasible request mix completes with blocks conserved."""
        scheduler = make_scheduler(kv_tokens=4096, max_batch=4)
        requests = [ServeRequest(i, 0.1 * i, prompt, output)
                    for i, (prompt, output) in enumerate(shapes)]
        report = scheduler.run(requests)
        assert len(report.outcomes) == len(requests)
        assert all(o.finish_s >= o.first_token_s for o in report.outcomes)
        assert scheduler.cache.allocated_blocks == 0
