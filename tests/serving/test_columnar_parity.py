"""Columnar scheduler parity: the event core's per-replica engine.

``ColumnarScheduler`` re-implements ``ContinuousBatchingScheduler`` on
numpy request columns for throughput; its contract is bit-identical
timelines — same floats, same preemption counts, same report — on any
stream and any stepping cadence.  These tests pin that across the
backends the fleet runs (TDX, bare metal, confidential GPU), through
preemption storms, and through a snapshot/restore round-trip.
"""

import json

import pytest

from repro.core.experiment import cpu_deployment, gpu_deployment
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16
from repro.serving.columnar import ColumnarScheduler
from repro.serving.scheduler import (
    ContinuousBatchingScheduler,
    ServeRequest,
    poisson_stream,
)

# (label, backend, kv_capacity_tokens, max_batch, lookahead, stream kwargs)
CASES = [
    ("tdx/relaxed", "tdx", 65536, 16, 0,
     dict(count=16, rate_per_s=4.0, mean_prompt=128, mean_output=32, seed=2)),
    ("baremetal/preempting", "baremetal", 1024, 8, 0,
     dict(count=20, rate_per_s=2.0, mean_prompt=96, mean_output=48, seed=7)),
    ("cgpu/bursty", "cgpu", 16384, 32, 0,
     dict(count=24, rate_per_s=8.0, mean_prompt=256, mean_output=64,
          seed=17)),
    ("baremetal/lookahead", "baremetal", 1024, 8, 4,
     dict(count=20, rate_per_s=2.0, mean_prompt=96, mean_output=48,
          seed=13)),
]


def make_pair(backend, kv, batch, lookahead):
    """(stepped reference, columnar twin) from identical configs."""
    if backend == "cgpu":
        deployment = gpu_deployment(confidential=True)
    else:
        deployment = cpu_deployment(backend, sockets_used=1)
    kwargs = dict(kv_capacity_tokens=kv, max_batch=batch,
                  admission_lookahead=lookahead)
    return (ContinuousBatchingScheduler(deployment, LLAMA2_7B, BFLOAT16,
                                        **kwargs),
            ColumnarScheduler(deployment, LLAMA2_7B, BFLOAT16, **kwargs))


def assert_reports_identical(a, b):
    assert len(a.outcomes) == len(b.outcomes)
    for x, y in zip(a.outcomes, b.outcomes):
        assert x.request == y.request
        assert x.first_token_s == y.first_token_s  # exact, not approx
        assert x.finish_s == y.finish_s
        assert x.preemptions == y.preemptions
    assert a.makespan_s == b.makespan_s
    assert a.start_s == b.start_s
    assert a.total_preemptions == b.total_preemptions
    assert a.mean_batch_occupancy == b.mean_batch_occupancy


@pytest.mark.parametrize("label,backend,kv,batch,lookahead,stream",
                         CASES, ids=[c[0] for c in CASES])
class TestColumnarParity:
    def test_run_matches_reference(self, label, backend, kv, batch,
                                   lookahead, stream):
        reference, columnar = make_pair(backend, kv, batch, lookahead)
        requests = poisson_stream(**stream)
        assert_reports_identical(reference.run(requests),
                                 columnar.run(list(requests)))

    @pytest.mark.parametrize("horizon", [0.1, 0.7, 5.0])
    def test_step_cadence_matches_reference(self, label, backend, kv, batch,
                                            lookahead, stream, horizon):
        reference, columnar = make_pair(backend, kv, batch, lookahead)
        requests = poisson_stream(**stream)
        expected = reference.run(requests)
        for request in requests:
            columnar.submit(request)
        clock = 0.0
        finished = []
        while not columnar.idle:
            clock += horizon
            finished.extend(columnar.step(clock))
        assert sorted(finished) == [r.request_id for r in requests]
        assert_reports_identical(expected, columnar.report())

    def test_snapshot_restore_mid_run(self, label, backend, kv, batch,
                                      lookahead, stream):
        reference, columnar = make_pair(backend, kv, batch, lookahead)
        requests = poisson_stream(**stream)
        expected = reference.run(requests)
        for request in requests:
            columnar.submit(request)
        clock = 0.0
        while not columnar.idle and clock < 3.0:
            clock += 0.25
            columnar.step(clock)
        payload = json.loads(json.dumps(columnar.to_state()))
        _, fresh = make_pair(backend, kv, batch, lookahead)
        fresh.from_state(payload)
        for scheduler in (columnar, fresh):
            while not scheduler.idle:
                clock += 0.25
                scheduler.step(clock)
        # Restored-and-finished equals carried-on-and-finished equals
        # the stepped reference.
        assert_reports_identical(expected, fresh.report())
        assert_reports_identical(columnar.report(), fresh.report())


class TestColumnarSurface:
    def test_finished_triple_and_release(self):
        _, columnar = make_pair("tdx", 65536, 4, 0)
        columnar.submit(ServeRequest(0, 0.0, 64, 8))
        clock = 0.0
        done = []
        while not columnar.idle:
            clock += 0.25
            done.extend(columnar.step(clock))
        assert done == [0]
        first, finish, preempted = columnar.finished_triple(0)
        assert 0.0 < first <= finish
        assert preempted == 0
        assert columnar.output_tokens(0) == 8
        columnar.release(0)
        with pytest.raises(KeyError):
            columnar.finished_triple(0)

    def test_fingerprint_distinguishes_engines(self):
        reference, columnar = make_pair("tdx", 65536, 4, 0)
        ours = columnar.config_fingerprint()
        theirs = reference.config_fingerprint()
        assert ours.pop("engine") == "columnar"
        assert ours == theirs

    def test_engine_mismatch_refused_on_restore(self):
        reference, columnar = make_pair("tdx", 65536, 4, 0)
        columnar.submit(ServeRequest(0, 0.0, 64, 8))
        columnar.step(0.25)
        from repro.state.errors import StateIntegrityError
        with pytest.raises(StateIntegrityError):
            reference.from_state(columnar.to_state())
