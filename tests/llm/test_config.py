"""Model registry and parameter accounting."""

import pytest

from repro.llm.config import (
    FALCON_7B,
    GPTJ_6B,
    LLAMA2_7B,
    LLAMA2_13B,
    LLAMA2_70B,
    LLAMA3_8B,
    SBERT_BASE,
    VALIDATION_MODELS,
    ModelConfig,
    all_models,
    model_by_name,
    tiny_llama,
)


class TestParameterCounts:
    """Parameter totals must land near the models' advertised sizes."""

    @pytest.mark.parametrize("config,billions,tolerance", [
        (LLAMA2_7B, 6.74, 0.05),
        (LLAMA2_13B, 13.0, 0.05),
        (LLAMA2_70B, 69.0, 0.05),
        (LLAMA3_8B, 8.0, 0.08),
        (GPTJ_6B, 6.05, 0.08),
        (FALCON_7B, 6.9, 0.10),
    ])
    def test_total_parameters(self, config, billions, tolerance):
        measured = config.num_parameters / 1e9
        assert measured == pytest.approx(billions, rel=tolerance)

    def test_weight_bytes_scale_with_dtype(self):
        bf16 = LLAMA2_7B.weight_bytes(2.0)
        int8 = LLAMA2_7B.weight_bytes(1.0)
        assert bf16 == 2 * int8

    def test_kv_bytes_per_token_llama2_7b(self):
        # 2 (K+V) * 4096 * 32 layers * 2 bytes = 512 KiB/token at bf16.
        assert LLAMA2_7B.kv_bytes_per_token(2.0) == 2 * 4096 * 32 * 2

    def test_gqa_shrinks_kv(self):
        # Llama2-70B uses 8 KV heads for 64 query heads.
        assert LLAMA2_70B.kv_dim == LLAMA2_70B.hidden_size // 8
        per_token_70b = LLAMA2_70B.kv_bytes_per_token(2.0)
        per_token_7b = LLAMA2_7B.kv_bytes_per_token(2.0)
        # Despite 2.5x layers and 2x hidden, GQA keeps KV growth modest.
        assert per_token_70b < 2 * per_token_7b


class TestValidation:
    def test_hidden_not_divisible_by_heads(self):
        with pytest.raises(ValueError, match="not divisible"):
            ModelConfig("bad", 2, 100, 3, 3, 50, 10)

    def test_heads_not_divisible_by_kv_heads(self):
        with pytest.raises(ValueError, match="not divisible"):
            ModelConfig("bad", 2, 64, 4, 3, 50, 10)

    def test_unknown_mlp(self):
        with pytest.raises(ValueError, match="mlp"):
            ModelConfig("bad", 2, 64, 4, 4, 50, 10, mlp="swiglu2")

    def test_unknown_norm(self):
        with pytest.raises(ValueError, match="norm"):
            ModelConfig("bad", 2, 64, 4, 4, 50, 10, norm="batchnorm")


class TestRegistry:
    def test_lookup_roundtrip(self):
        for config in all_models():
            assert model_by_name(config.name) is config

    def test_unknown_model(self):
        with pytest.raises(KeyError, match="llama9"):
            model_by_name("llama9-1t")

    def test_validation_models_are_the_papers_five(self):
        names = {m.name for m in VALIDATION_MODELS}
        assert names == {"llama3-8b", "gptj-6b", "falcon-7b",
                         "baichuan2-7b", "qwen-7b"}

    def test_encoders_marked(self):
        assert SBERT_BASE.encoder_only
        assert not LLAMA2_7B.encoder_only


class TestTinyLlama:
    def test_defaults_are_small(self):
        tiny = tiny_llama()
        assert tiny.num_parameters < 1_000_000

    def test_gqa_variant(self):
        tiny = tiny_llama(num_heads=4, num_kv_heads=2)
        assert tiny.kv_dim == tiny.hidden_size // 2

    def test_scaled_depth(self):
        deeper = tiny_llama().scaled("deeper", num_layers=5)
        assert deeper.num_layers == 5
        assert deeper.hidden_size == tiny_llama().hidden_size
