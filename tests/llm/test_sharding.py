"""Tensor-parallel shard planning."""

import pytest

from repro.llm.config import LLAMA2_7B, LLAMA2_70B, FALCON_7B, tiny_llama
from repro.llm.sharding import max_degree, plan_tensor_parallel


class TestPlanBasics:
    def test_degree_one_is_whole_model(self):
        plan = plan_tensor_parallel(LLAMA2_7B, 1)
        assert plan.params_per_device == pytest.approx(
            LLAMA2_7B.num_parameters, rel=0.001)
        assert plan.efficiency == pytest.approx(1.0, rel=0.001)

    def test_shards_partition_the_model(self):
        """degree * sharded + replicated ~= total parameters."""
        plan = plan_tensor_parallel(LLAMA2_7B, 4)
        reconstructed = (plan.degree * plan.sharded_params_per_device
                         + plan.replicated_params)
        assert reconstructed == pytest.approx(LLAMA2_7B.num_parameters,
                                              rel=0.001)

    def test_memory_shrinks_with_degree(self):
        plans = [plan_tensor_parallel(LLAMA2_7B, d) for d in (1, 2, 4, 8)]
        footprints = [plan.params_per_device for plan in plans]
        assert footprints == sorted(footprints, reverse=True)

    def test_efficiency_degrades_with_degree(self):
        """Replicated embeddings/norms hurt more at higher degrees."""
        low = plan_tensor_parallel(LLAMA2_7B, 2)
        high = plan_tensor_parallel(LLAMA2_7B, 8)
        assert high.efficiency < low.efficiency < 1.0


class TestGqaAndMqa:
    def test_70b_gqa_shards_kv_up_to_8(self):
        plan = plan_tensor_parallel(LLAMA2_70B, 8)
        assert plan.kv_heads_per_device == 1
        assert plan.kv_replication == 1

    def test_70b_beyond_kv_heads_replicates(self):
        plan = plan_tensor_parallel(LLAMA2_70B, 16)
        assert plan.kv_heads_per_device == 1
        assert plan.kv_replication == 2

    def test_falcon_mqa_replicates_its_single_kv_head(self):
        # Falcon-7B: 71 query heads, 1 KV head.
        plan = plan_tensor_parallel(FALCON_7B, 71)
        assert plan.kv_replication == 71

    def test_replication_lowers_efficiency(self):
        sharded_kv = plan_tensor_parallel(LLAMA2_70B, 8)
        replicated_kv = plan_tensor_parallel(LLAMA2_70B, 16)
        # Per-device memory halves less than 2x when KV replicates.
        ratio = (sharded_kv.params_per_device
                 / replicated_kv.params_per_device)
        assert ratio < 2.0


class TestConstraints:
    def test_indivisible_heads_rejected(self):
        with pytest.raises(ValueError, match="heads"):
            plan_tensor_parallel(LLAMA2_7B, 3)

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            plan_tensor_parallel(LLAMA2_7B, 0)

    def test_max_degree(self):
        assert max_degree(LLAMA2_7B, limit=64) == 32
        tiny = tiny_llama(num_heads=4, intermediate_size=128)
        assert max_degree(tiny, limit=8) == 4
