"""Property-based tests for the paged KV cache.

Hypothesis drives arbitrary admit/append/preempt(free)/resume sequences
against :class:`PagedKVCache` and asserts the allocator invariants the
serving scheduler depends on: blocks are never leaked, never owned by
two sequences, accounting always balances, and a preempted-then-resumed
sequence recomputes to exactly its pre-preemption context length.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.kvcache import PagedKVCache


def _check_conservation(cache: PagedKVCache) -> None:
    """Global allocator invariants that must hold after every operation."""
    assert cache.free_blocks + cache.allocated_blocks == cache.num_blocks
    owned = [block for seq in cache._tables.values() for block in seq]
    assert len(owned) == len(set(owned)), "block owned twice"
    assert cache.allocated_blocks == len(owned)
    assert not set(owned) & set(cache._free), "block both owned and free"
    assert 0.0 <= cache.utilization() <= 1.0
    for seq_id, table in cache._tables.items():
        need = -(-cache.sequence_length(seq_id) // cache.block_size) \
            if cache.sequence_length(seq_id) else 0
        assert len(table) == max(need, len(table)) >= need


ops = st.lists(
    st.one_of(
        st.tuples(st.just("allocate"), st.integers(0, 7),
                  st.integers(0, 40)),
        st.tuples(st.just("append"), st.integers(0, 7), st.just(0)),
        st.tuples(st.just("free"), st.integers(0, 7), st.just(0)),
    ),
    min_size=1, max_size=120,
)


@settings(max_examples=60, deadline=None)
@given(ops=ops, num_blocks=st.integers(4, 32), block_size=st.integers(1, 16))
def test_arbitrary_lifecycle_never_leaks_blocks(ops, num_blocks, block_size):
    cache = PagedKVCache(num_blocks=num_blocks, block_size=block_size)
    live: dict[int, int] = {}
    for op, seq_id, arg in ops:
        if op == "allocate":
            if seq_id in live:
                with pytest.raises(KeyError):
                    cache.allocate(seq_id, arg)
            else:
                try:
                    cache.allocate(seq_id, arg)
                except MemoryError:
                    assert (-(-arg // block_size)) > cache.free_blocks
                else:
                    live[seq_id] = arg
        elif op == "append":
            if seq_id in live:
                try:
                    cache.append_token(seq_id)
                except MemoryError:
                    assert cache.free_blocks == 0
                else:
                    live[seq_id] += 1
            else:
                with pytest.raises(KeyError):
                    cache.append_token(seq_id)
        else:
            if seq_id in live:
                cache.free(seq_id)
                del live[seq_id]
            else:
                with pytest.raises(KeyError):
                    cache.free(seq_id)
        _check_conservation(cache)
        for sid, length in live.items():
            assert cache.sequence_length(sid) == length
    for sid in list(live):
        cache.free(sid)
    assert cache.free_blocks == cache.num_blocks
    assert cache.allocated_blocks == 0


@settings(max_examples=40, deadline=None)
@given(prompt_len=st.integers(0, 64), decoded=st.integers(0, 32),
       block_size=st.integers(1, 16))
def test_preempt_then_resume_restores_context_length(prompt_len, decoded,
                                                     block_size):
    """vLLM-style recompute preemption: free everything, re-admit at the
    full pre-preemption context, and the cache must land in an identical
    allocation state."""
    # Pool sized so prompt+decoded always fits even at block_size=1.
    cache = PagedKVCache(num_blocks=128, block_size=block_size)
    cache.allocate(0, prompt_len)
    for _ in range(decoded):
        cache.append_token(0)
    context = cache.sequence_length(0)
    blocks_before = len(cache.block_table(0))
    cache.free(0)  # preempt
    assert cache.free_blocks == cache.num_blocks
    cache.allocate(0, context)  # recompute prompt + generated prefix
    assert cache.sequence_length(0) == context == prompt_len + decoded
    assert len(cache.block_table(0)) == blocks_before
    _check_conservation(cache)


@settings(max_examples=40, deadline=None)
@given(block_size=st.integers(1, 8), seqs=st.integers(1, 6))
def test_capacity_is_exact_in_blocks(block_size, seqs):
    """Admitting exactly capacity succeeds; one more block's worth fails."""
    num_blocks = seqs * 3
    cache = PagedKVCache(num_blocks=num_blocks, block_size=block_size)
    for seq_id in range(seqs):
        cache.allocate(seq_id, 3 * block_size)
    assert cache.free_blocks == 0
    assert cache.utilization() == 1.0
    with pytest.raises(MemoryError):
        cache.allocate(seqs, 1)
    with pytest.raises(MemoryError):
        cache.append_token(0)
    _check_conservation(cache)
