"""Analytical model summaries."""

import pytest

from repro.llm.analysis import (
    arithmetic_intensity,
    compute_bound_batch,
    memory_floor_tok_s,
    summarize,
)
from repro.llm.config import LLAMA2_7B, LLAMA2_70B
from repro.llm.datatypes import BFLOAT16, INT8


class TestSummarize:
    def test_weight_footprint(self):
        summary = summarize(LLAMA2_7B, BFLOAT16)
        assert summary.weight_gb == pytest.approx(13.5, rel=0.02)

    def test_decode_flops_near_2x_params(self):
        summary = summarize(LLAMA2_7B, BFLOAT16, context_len=1)
        assert summary.decode_flops_per_token == pytest.approx(
            2 * LLAMA2_7B.num_parameters, rel=0.1)

    def test_batch1_decode_is_memory_heavy(self):
        """AI of batch-1 decode ~ 1 flop/byte: deeply memory-bound."""
        summary = summarize(LLAMA2_7B, BFLOAT16)
        assert summary.decode_intensity < 2.0

    def test_int8_doubles_intensity(self):
        bf16 = summarize(LLAMA2_7B, BFLOAT16)
        int8 = summarize(LLAMA2_7B, INT8)
        ratio = int8.decode_intensity / bf16.decode_intensity
        assert 1.7 < ratio < 2.1


class TestArithmeticIntensity:
    def test_grows_with_batch(self):
        values = [arithmetic_intensity(LLAMA2_7B, BFLOAT16, batch)
                  for batch in (1, 8, 64)]
        assert values == sorted(values)

    def test_long_context_lowers_intensity(self):
        """KV reads scale with context but add no amortizable FLOPs."""
        short = arithmetic_intensity(LLAMA2_7B, BFLOAT16, 64,
                                     context_len=128)
        long = arithmetic_intensity(LLAMA2_7B, BFLOAT16, 64,
                                    context_len=3000)
        assert long < short

    def test_validation(self):
        with pytest.raises(ValueError):
            arithmetic_intensity(LLAMA2_7B, BFLOAT16, 0)


class TestComputeBoundBatch:
    def test_crossover_for_cpu_like_balance(self):
        """An EMR-like sustained balance (~60 flop/byte) crosses at a
        realistic batch size."""
        batch = compute_bound_batch(LLAMA2_7B, BFLOAT16,
                                    flops_per_s=12e12, bytes_per_s=200e9,
                                    context_len=192)
        assert batch is not None
        assert 32 <= batch <= 512

    def test_no_crossover_at_extreme_balance(self):
        batch = compute_bound_batch(LLAMA2_7B, BFLOAT16,
                                    flops_per_s=1e15, bytes_per_s=100e9,
                                    context_len=4000 - 520, max_batch=256)
        assert batch is None

    def test_validation(self):
        with pytest.raises(ValueError):
            compute_bound_batch(LLAMA2_7B, BFLOAT16, 0.0, 1.0)


class TestMemoryFloor:
    def test_h100_floor_for_7b(self):
        """~3.3 TB/s over 13.5 GB of weights -> ~245 tok/s hard ceiling
        at batch 1 — why even H100s serve 7B at only ~170 tok/s."""
        floor = memory_floor_tok_s(LLAMA2_7B, BFLOAT16, 3.3e12)
        assert 200 < floor < 280

    def test_cpu_floor_explains_simulated_latency(self):
        from repro.core.experiment import cpu_deployment
        from repro.engine.placement import Workload
        from repro.engine.simulator import simulate_generation
        floor = memory_floor_tok_s(LLAMA2_7B, BFLOAT16, 230e9)
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=1,
                            input_tokens=128, output_tokens=8)
        result = simulate_generation(workload, cpu_deployment(
            "baremetal", sockets_used=1))
        # The simulator can never exceed the physical floor.
        assert result.decode_throughput_tok_s < floor

    def test_70b_floor_below_sla(self):
        """70B on two sockets cannot reach 5 tok/s — the Fig. 5 SLA
        violation is physical, not a tuning artifact."""
        floor = memory_floor_tok_s(LLAMA2_70B, BFLOAT16, 2 * 230e9)
        assert floor < 5.0
