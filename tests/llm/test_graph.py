"""Operator-graph construction: structure and scaling laws."""

import pytest

from repro.llm.config import GPTJ_6B, LLAMA2_7B, LLAMA2_70B, SBERT_BASE
from repro.llm.datatypes import BFLOAT16, INT8
from repro.llm.graph import (
    BLOCK_OP_NAMES,
    decode_step_ops,
    encode_ops,
    prefill_ops,
)
from repro.llm.ops import OpCategory, Phase, merge_totals


class TestStructure:
    def test_decode_has_all_block_ops_per_layer(self):
        ops = decode_step_ops(LLAMA2_7B, BFLOAT16, 1, 128)
        for layer in range(LLAMA2_7B.num_layers):
            names = [op.name for op in ops if op.layer == layer]
            assert names == list(BLOCK_OP_NAMES)

    def test_decode_head_and_embedding(self):
        ops = decode_step_ops(LLAMA2_7B, BFLOAT16, 1, 128)
        top_level = [op.name for op in ops if op.layer is None]
        assert top_level == ["embed_tokens", "final_norm", "lm_head"]

    def test_phases_are_tagged(self):
        assert all(op.phase is Phase.DECODE
                   for op in decode_step_ops(LLAMA2_7B, BFLOAT16, 1, 8))
        assert all(op.phase is Phase.PREFILL
                   for op in prefill_ops(LLAMA2_7B, BFLOAT16, 1, 8))

    def test_encoder_has_no_lm_head(self):
        ops = encode_ops(SBERT_BASE, BFLOAT16, 4, 64)
        assert not any(op.name == "lm_head" for op in ops)

    def test_encode_rejects_decoder_models(self):
        with pytest.raises(ValueError, match="not an encoder"):
            encode_ops(LLAMA2_7B, BFLOAT16, 1, 64)


class TestFlopAccounting:
    def test_decode_flops_approx_2x_params(self):
        """One decode token costs ~2 FLOPs per parameter (plus attention)."""
        ops = decode_step_ops(LLAMA2_7B, BFLOAT16, 1, context_len=1)
        flops = merge_totals(ops)["flops"]
        assert flops == pytest.approx(2 * LLAMA2_7B.num_parameters, rel=0.10)

    def test_prefill_flops_scale_with_tokens(self):
        one = merge_totals(prefill_ops(LLAMA2_7B, BFLOAT16, 1, 64))["flops"]
        four = merge_totals(prefill_ops(LLAMA2_7B, BFLOAT16, 4, 64))["flops"]
        assert four == pytest.approx(4 * one, rel=0.02)

    def test_prefill_attention_quadratic(self):
        def attn_flops(seq):
            ops = prefill_ops(LLAMA2_7B, BFLOAT16, 1, seq)
            return sum(op.flops for op in ops if op.name == "self_attention")
        assert attn_flops(512) == pytest.approx(4 * attn_flops(256), rel=0.05)

    def test_decode_attention_linear_in_context(self):
        def attn_flops(ctx):
            ops = decode_step_ops(LLAMA2_7B, BFLOAT16, 1, ctx)
            return sum(op.flops for op in ops if op.name == "self_attention")
        assert attn_flops(1024) == pytest.approx(2 * attn_flops(512), rel=0.02)

    def test_beam_multiplies_decode_not_prefill(self):
        decode_1 = merge_totals(decode_step_ops(LLAMA2_7B, BFLOAT16, 2, 64,
                                                beam_size=1))["flops"]
        decode_4 = merge_totals(decode_step_ops(LLAMA2_7B, BFLOAT16, 2, 64,
                                                beam_size=4))["flops"]
        assert decode_4 == pytest.approx(4 * decode_1, rel=0.02)
        prefill_1 = merge_totals(prefill_ops(LLAMA2_7B, BFLOAT16, 2, 64,
                                             beam_size=1))["flops"]
        prefill_4 = merge_totals(prefill_ops(LLAMA2_7B, BFLOAT16, 2, 64,
                                             beam_size=4))["flops"]
        assert prefill_4 == prefill_1


class TestByteAccounting:
    def test_weight_bytes_independent_of_batch(self):
        def streamed_weights(batch):
            ops = decode_step_ops(LLAMA2_7B, BFLOAT16, batch, 64)
            # Embedding rows are gathered per token, not streamed.
            return sum(op.weight_bytes for op in ops
                       if op.name != "embed_tokens")
        assert streamed_weights(64) == streamed_weights(1)
        one = merge_totals(decode_step_ops(LLAMA2_7B, BFLOAT16, 1, 64))
        big = merge_totals(decode_step_ops(LLAMA2_7B, BFLOAT16, 64, 64))
        assert big["activation_bytes"] > one["activation_bytes"]

    def test_decode_weight_bytes_cover_all_parameters(self):
        totals = merge_totals(decode_step_ops(LLAMA2_7B, BFLOAT16, 1, 64))
        full = LLAMA2_7B.num_parameters * BFLOAT16.bytes
        # Embedding rows are gathered, not streamed, so slightly less.
        assert 0.9 * full < totals["weight_bytes"] <= full

    def test_kv_read_scales_with_context(self):
        short = merge_totals(decode_step_ops(LLAMA2_7B, BFLOAT16, 1, 128))
        long = merge_totals(decode_step_ops(LLAMA2_7B, BFLOAT16, 1, 1024))
        assert long["kv_read_bytes"] == pytest.approx(
            8 * short["kv_read_bytes"], rel=0.01)

    def test_kv_write_matches_model_accounting(self):
        totals = merge_totals(decode_step_ops(LLAMA2_7B, BFLOAT16, 3, 64))
        assert totals["kv_write_bytes"] == pytest.approx(
            3 * LLAMA2_7B.kv_bytes_per_token(BFLOAT16.bytes))

    def test_int8_halves_weight_traffic(self):
        bf16 = merge_totals(decode_step_ops(LLAMA2_7B, BFLOAT16, 1, 64))
        int8 = merge_totals(decode_step_ops(LLAMA2_7B, INT8, 1, 64))
        assert int8["weight_bytes"] == pytest.approx(
            bf16["weight_bytes"] / 2)

    def test_gqa_reduces_kv_traffic_not_attention_flops(self):
        dense = merge_totals(decode_step_ops(LLAMA2_7B, BFLOAT16, 1, 512))
        gqa = merge_totals(decode_step_ops(LLAMA2_70B, BFLOAT16, 1, 512))
        ratio_kv = gqa["kv_read_bytes"] / dense["kv_read_bytes"]
        # 70B: 80 layers x 1024 kv_dim vs 7B: 32 x 4096 => 0.625.
        assert ratio_kv == pytest.approx(0.625, rel=0.01)

    def test_gelu_mlp_has_two_matrices(self):
        ops = decode_step_ops(GPTJ_6B, BFLOAT16, 1, 64)
        gate_up = [op for op in ops if op.name == "gate_up_proj"]
        expected = GPTJ_6B.hidden_size * GPTJ_6B.intermediate_size * 2
        assert gate_up[0].weight_bytes == expected


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"batch_size": 0}, {"context_len": 0}, {"beam_size": 0},
    ])
    def test_bad_shapes_rejected(self, kwargs):
        args = {"batch_size": 1, "context_len": 16, "beam_size": 1}
        args.update(kwargs)
        with pytest.raises(ValueError):
            decode_step_ops(LLAMA2_7B, BFLOAT16, args["batch_size"],
                            args["context_len"], args["beam_size"])

    def test_gemm_ops_categorized(self):
        ops = decode_step_ops(LLAMA2_7B, BFLOAT16, 1, 16)
        gemm_names = {op.name for op in ops
                      if op.category is OpCategory.GEMM}
        assert {"qkv_proj", "o_proj", "gate_up_proj", "down_proj",
                "lm_head"} <= gemm_names
