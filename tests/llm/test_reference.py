"""Functional reference transformer: correctness and FLOP validation."""

import numpy as np
import pytest

from repro.llm.config import tiny_llama
from repro.llm.graph import decode_step_ops, prefill_ops
from repro.llm.reference import FlopRecorder, ReferenceTransformer


@pytest.fixture(scope="module")
def model():
    return ReferenceTransformer(tiny_llama(), seed=0)


def prompt(batch=1, length=6, vocab=199, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(4, vocab, size=(batch, length))


class TestForward:
    def test_logit_shape(self, model):
        logits = model.forward(prompt(batch=2, length=5))
        assert logits.shape == (2, 5, model.config.vocab_size)

    def test_deterministic(self, model):
        ids = prompt()
        np.testing.assert_array_equal(model.forward(ids), model.forward(ids))

    def test_finite(self, model):
        assert np.all(np.isfinite(model.forward(prompt(batch=3, length=8))))

    def test_rejects_1d(self, model):
        with pytest.raises(ValueError, match="2-D"):
            model.forward(np.array([1, 2, 3]))

    def test_rejects_out_of_vocab(self, model):
        with pytest.raises(ValueError, match="vocabulary"):
            model.forward(np.array([[10_000]]))

    def test_causality(self, model):
        """Changing a later token must not affect earlier logits."""
        ids = prompt(length=6)
        changed = ids.copy()
        changed[0, -1] = (changed[0, -1] + 1 - 4) % 190 + 4
        base = model.forward(ids)
        other = model.forward(changed)
        np.testing.assert_allclose(base[0, :-1], other[0, :-1], atol=1e-10)
        assert not np.allclose(base[0, -1], other[0, -1])


class TestKVCache:
    def test_incremental_matches_full(self, model):
        """Prefill+decode with cache == one full forward pass."""
        ids = prompt(length=7)
        full = model.forward(ids)
        cache = model.new_cache()
        part1 = model.forward(ids[:, :4], cache)
        part2 = model.forward(ids[:, 4:], cache)
        np.testing.assert_allclose(part1, full[:, :4], atol=1e-8)
        np.testing.assert_allclose(part2, full[:, 4:], atol=1e-8)

    def test_cache_lengths_grow(self, model):
        cache = model.new_cache()
        model.forward(prompt(length=5), cache)
        assert cache[0]["k"].shape[2] == 5
        model.forward(prompt(length=1), cache)
        assert cache[0]["k"].shape[2] == 6


class TestGQA:
    def test_gqa_forward_runs_and_matches_shapes(self):
        config = tiny_llama(num_heads=4, num_kv_heads=2)
        model = ReferenceTransformer(config, seed=1)
        logits = model.forward(prompt(length=5))
        assert logits.shape == (1, 5, config.vocab_size)

    def test_gqa_cache_stores_fewer_heads(self):
        config = tiny_llama(num_heads=4, num_kv_heads=2)
        model = ReferenceTransformer(config, seed=1)
        cache = model.new_cache()
        model.forward(prompt(length=3), cache)
        assert cache[0]["k"].shape[1] == 2


class TestQuantizedModel:
    def test_int8_model_close_to_float(self):
        config = tiny_llama()
        float_model = ReferenceTransformer(config, seed=3)
        int8_model = ReferenceTransformer(config, seed=3, quantized=True)
        ids = prompt(length=5, seed=3)
        a = float_model.forward(ids)
        b = int8_model.forward(ids)
        # Quantization noise should not change the overall scale.
        assert np.abs(a - b).mean() < 0.15 * np.abs(a).std() + 0.05


class TestEncoder:
    def test_encode_shape_and_norm(self):
        from repro.llm.config import SBERT_BASE
        config = SBERT_BASE.scaled("sbert-tiny", num_layers=2)
        model = ReferenceTransformer(config, seed=4)
        emb = model.encode(prompt(batch=2, length=6, vocab=config.vocab_size))
        assert emb.shape == (2, config.hidden_size)

    def test_decoder_cannot_encode(self, model):
        with pytest.raises(ValueError, match="encoder"):
            model.encode(prompt())


class TestFlopValidation:
    """The analytical graph must agree with actually executed matmuls."""

    @pytest.mark.parametrize("gqa", [False, True])
    def test_decode_gemm_flops_match_graph(self, gqa):
        config = tiny_llama(num_heads=4, num_kv_heads=2 if gqa else 4)
        model = ReferenceTransformer(config, seed=0)
        cache = model.new_cache()
        context = 9
        model.forward(prompt(length=context, vocab=config.vocab_size), cache)
        recorder = FlopRecorder()
        model.forward(prompt(length=1, vocab=config.vocab_size), cache,
                      recorder=recorder)

        from repro.llm.datatypes import BFLOAT16
        ops = decode_step_ops(config, BFLOAT16, 1, context_len=context + 1)
        for name in ("qkv_proj", "o_proj", "down_proj", "lm_head"):
            analytical = sum(op.flops for op in ops if op.name == name)
            assert recorder.counts[name] == pytest.approx(analytical), name

    def test_decode_attention_flops_match_graph(self):
        config = tiny_llama()
        model = ReferenceTransformer(config, seed=0)
        cache = model.new_cache()
        model.forward(prompt(length=7, vocab=config.vocab_size), cache)
        recorder = FlopRecorder()
        model.forward(prompt(length=1, vocab=config.vocab_size), cache,
                      recorder=recorder)

        from repro.llm.datatypes import BFLOAT16
        ops = decode_step_ops(config, BFLOAT16, 1, context_len=8)
        analytical = sum(op.flops for op in ops
                         if op.name == "self_attention")
        # The graph adds softmax cost on top of the two GEMMs.
        measured = recorder.counts["self_attention"]
        assert measured <= analytical <= measured * 1.25

    def test_prefill_gemm_flops_match_graph(self):
        config = tiny_llama()
        model = ReferenceTransformer(config, seed=0)
        recorder = FlopRecorder()
        seq = 12
        model.forward(prompt(length=seq, vocab=config.vocab_size),
                      recorder=recorder)

        from repro.llm.datatypes import BFLOAT16
        ops = prefill_ops(config, BFLOAT16, 1, seq)
        analytical_qkv = sum(op.flops for op in ops if op.name == "qkv_proj")
        assert recorder.counts["qkv_proj"] == pytest.approx(analytical_qkv)
        # Graph lm_head only computes last-position logits; the reference
        # computes all positions, so reference >= graph.
        analytical_head = sum(op.flops for op in ops if op.name == "lm_head")
        assert recorder.counts["lm_head"] == pytest.approx(
            analytical_head * seq)
