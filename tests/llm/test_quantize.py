"""int8 quantization: error bounds and matmul agreement (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.llm.quantize import (
    int8_matmul,
    quantization_error,
    quantize_per_row,
    to_bfloat16,
)

finite_matrix = hnp.arrays(
    dtype=np.float64, shape=st.tuples(st.integers(1, 8), st.integers(1, 16)),
    elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))


class TestQuantizePerRow:
    def test_exact_for_powers(self):
        weight = np.array([[127.0, -127.0, 0.0]])
        quantized = quantize_per_row(weight)
        np.testing.assert_allclose(quantized.dequantize(), weight)

    def test_values_are_int8_bounded(self):
        rng = np.random.default_rng(0)
        quantized = quantize_per_row(rng.normal(size=(16, 32)))
        assert quantized.values.dtype == np.int8
        assert quantized.values.min() >= -127
        assert quantized.values.max() <= 127

    @settings(max_examples=60, deadline=None)
    @given(finite_matrix)
    def test_error_bounded_by_half_step(self, weight):
        quantized = quantize_per_row(weight.astype(np.float32))
        absmax = np.abs(weight).max(axis=1, keepdims=True)
        step = np.where(absmax > 0, absmax / 127.0, 1.0)
        error = np.abs(quantized.dequantize() - weight)
        assert np.all(error <= step / 2 + 1e-5)

    def test_zero_row_handled(self):
        quantized = quantize_per_row(np.zeros((2, 4)))
        np.testing.assert_array_equal(quantized.dequantize(), np.zeros((2, 4)))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            quantize_per_row(np.zeros(4))

    def test_rejects_nan(self):
        bad = np.full((2, 2), np.nan)
        with pytest.raises(ValueError, match="finite"):
            quantize_per_row(bad)

    def test_nbytes_accounts_payload_and_scales(self):
        quantized = quantize_per_row(np.ones((4, 8)))
        assert quantized.nbytes == 4 * 8 + 4 * 4


class TestInt8Matmul:
    def test_close_to_float_matmul(self):
        rng = np.random.default_rng(1)
        weight = rng.normal(size=(8, 16))
        activations = rng.normal(size=(3, 16)).astype(np.float32)
        exact = activations @ weight.T
        approx = int8_matmul(activations, quantize_per_row(weight))
        assert np.abs(exact - approx).max() < 0.05 * np.abs(exact).max() + 0.05

    def test_quantization_error_helper(self):
        rng = np.random.default_rng(2)
        weight = rng.normal(size=(4, 4))
        assert quantization_error(weight) <= np.abs(weight).max() / 127.0


class TestBfloat16:
    def test_exact_for_representable(self):
        values = np.array([1.0, 2.0, -0.5, 0.0], dtype=np.float32)
        np.testing.assert_array_equal(to_bfloat16(values), values)

    def test_relative_error_within_bf16_epsilon(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=1000).astype(np.float32)
        rounded = to_bfloat16(values)
        rel = np.abs(rounded - values) / np.maximum(np.abs(values), 1e-30)
        assert rel.max() <= 2 ** -8  # bf16 has 8 total mantissa bits

    def test_round_to_nearest_even(self):
        # 1 + 2^-9 is exactly halfway between bf16 neighbours 1.0 and
        # 1 + 2^-8; ties-to-even rounds down to 1.0.
        value = np.float32(1.0 + 2.0 ** -9)
        assert to_bfloat16(np.array([value]))[0] == np.float32(1.0)
