"""KV cache bookkeeping, including PagedKVCache invariants (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.llm.config import LLAMA2_7B
from repro.llm.kvcache import KVCacheState, PagedKVCache


class TestKVCacheState:
    def make(self):
        return KVCacheState(LLAMA2_7B, dtype_bytes=2.0)

    def test_bytes_track_tokens(self):
        cache = self.make()
        cache.add_sequences(2, prompt_len=100)
        per_token = LLAMA2_7B.kv_bytes_per_token(2.0)
        assert cache.bytes == 200 * per_token

    def test_append_extends_every_sequence(self):
        cache = self.make()
        cache.add_sequences(3, prompt_len=10)
        cache.append_token()
        assert cache.lengths == [11, 11, 11]

    def test_evict(self):
        cache = self.make()
        cache.add_sequences(2, prompt_len=5)
        cache.evict(0)
        assert cache.total_tokens == 5

    def test_write_bytes_per_step(self):
        cache = self.make()
        cache.add_sequences(4, prompt_len=1)
        per_token = LLAMA2_7B.kv_bytes_per_token(2.0)
        assert cache.write_bytes_per_step() == 4 * per_token

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            self.make().add_sequences(-1, 5)


class TestPagedKVCache:
    def test_allocation_math(self):
        cache = PagedKVCache(num_blocks=10, block_size=16)
        cache.allocate(1, prompt_len=33)  # needs ceil(33/16) = 3 blocks
        assert cache.allocated_blocks == 3
        assert cache.free_blocks == 7

    def test_append_grows_at_block_boundary(self):
        cache = PagedKVCache(num_blocks=4, block_size=4)
        cache.allocate(1, prompt_len=4)
        assert cache.allocated_blocks == 1
        cache.append_token(1)
        assert cache.allocated_blocks == 2

    def test_out_of_memory(self):
        cache = PagedKVCache(num_blocks=2, block_size=4)
        with pytest.raises(MemoryError):
            cache.allocate(1, prompt_len=100)

    def test_oom_on_growth(self):
        cache = PagedKVCache(num_blocks=1, block_size=2)
        cache.allocate(1, prompt_len=2)
        with pytest.raises(MemoryError):
            cache.append_token(1)

    def test_double_allocate_rejected(self):
        cache = PagedKVCache(num_blocks=4, block_size=4)
        cache.allocate(7, prompt_len=1)
        with pytest.raises(KeyError):
            cache.allocate(7, prompt_len=1)

    def test_free_recycles(self):
        cache = PagedKVCache(num_blocks=2, block_size=4)
        cache.allocate(1, prompt_len=8)
        cache.free(1)
        assert cache.free_blocks == 2
        cache.allocate(2, prompt_len=8)  # must succeed after recycle

    def test_utilization(self):
        cache = PagedKVCache(num_blocks=10, block_size=10)
        cache.allocate(1, prompt_len=15)  # 2 blocks for 15 tokens
        assert cache.utilization() == pytest.approx(0.75)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=2),
                  st.integers(min_value=0, max_value=30)),
        max_size=40))
    def test_block_conservation_invariant(self, actions):
        """free + allocated == total through any operation sequence, and
        no block is owned by two sequences."""
        cache = PagedKVCache(num_blocks=16, block_size=4)
        live = set()
        next_id = 0
        for kind, arg in actions:
            try:
                if kind == 0:
                    cache.allocate(next_id, prompt_len=arg)
                    live.add(next_id)
                    next_id += 1
                elif kind == 1 and live:
                    cache.append_token(sorted(live)[arg % len(live)])
                elif kind == 2 and live:
                    victim = sorted(live)[arg % len(live)]
                    cache.free(victim)
                    live.discard(victim)
            except MemoryError:
                pass
            assert cache.free_blocks + cache.allocated_blocks == 16
            owned = [block for seq in live for block in cache.block_table(seq)]
            assert len(owned) == len(set(owned))
            assert len(owned) == cache.allocated_blocks
