"""Operator accounting invariants."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.llm.ops import Operator, OpCategory, Phase, group_by_name, merge_totals


def make_op(**overrides):
    base = dict(name="gemm0", category=OpCategory.GEMM, phase=Phase.DECODE,
                layer=0, flops=100.0, weight_bytes=10.0,
                activation_bytes=5.0, kv_read_bytes=2.0, kv_write_bytes=1.0)
    base.update(overrides)
    return Operator(**base)


class TestOperator:
    def test_bytes_total_sums_streams(self):
        assert make_op().bytes_total == 18.0

    def test_arithmetic_intensity(self):
        assert make_op().arithmetic_intensity == pytest.approx(100.0 / 18.0)

    def test_zero_byte_op_has_infinite_intensity(self):
        op = make_op(weight_bytes=0, activation_bytes=0, kv_read_bytes=0,
                     kv_write_bytes=0)
        assert op.arithmetic_intensity == math.inf

    @pytest.mark.parametrize("field", ["flops", "weight_bytes",
                                       "activation_bytes", "kv_read_bytes",
                                       "kv_write_bytes"])
    def test_negative_cost_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            make_op(**{field: -1.0})

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            make_op(flops=float("nan"))

    @given(st.floats(min_value=0.0, max_value=1e6))
    def test_scaled_is_linear(self, factor):
        op = make_op()
        scaled = op.scaled(factor)
        assert scaled.flops == pytest.approx(op.flops * factor)
        assert scaled.bytes_total == pytest.approx(op.bytes_total * factor)

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            make_op().scaled(-0.5)


class TestAggregation:
    def test_merge_totals(self):
        ops = [make_op(), make_op(flops=50.0)]
        totals = merge_totals(ops)
        assert totals["flops"] == 150.0
        assert totals["weight_bytes"] == 20.0

    def test_merge_totals_empty(self):
        assert merge_totals([]) == {
            "flops": 0.0, "weight_bytes": 0.0, "activation_bytes": 0.0,
            "kv_read_bytes": 0.0, "kv_write_bytes": 0.0}

    def test_group_by_name_preserves_order(self):
        ops = [make_op(name="a", layer=0), make_op(name="b"),
               make_op(name="a", layer=1)]
        groups = group_by_name(ops)
        assert list(groups) == ["a", "b"]
        assert [op.layer for op in groups["a"]] == [0, 1]
