"""Greedy and beam decoding on the reference transformer."""

import numpy as np
import pytest

from repro.llm.config import tiny_llama
from repro.llm.reference import ReferenceTransformer
from repro.llm.sampling import beam_decode, greedy_decode


@pytest.fixture(scope="module")
def model():
    return ReferenceTransformer(tiny_llama(), seed=11)


PROMPT = [1, 17, 42, 9]


class TestGreedy:
    def test_token_count(self, model):
        out = greedy_decode(model, PROMPT, max_new_tokens=5)
        assert len(out.tokens) == 5

    def test_deterministic(self, model):
        a = greedy_decode(model, PROMPT, max_new_tokens=4)
        b = greedy_decode(model, PROMPT, max_new_tokens=4)
        assert a.tokens == b.tokens
        assert a.score == b.score

    def test_matches_uncached_argmax(self, model):
        """Greedy with KV cache equals step-by-step full forward argmax."""
        out = greedy_decode(model, PROMPT, max_new_tokens=3)
        sequence = list(PROMPT)
        expected = []
        for _ in range(3):
            logits = model.forward(np.array([sequence]))
            token = int(np.argmax(logits[0, -1]))
            expected.append(token)
            sequence.append(token)
        assert list(out.tokens) == expected

    def test_score_is_negative_logprob_sum(self, model):
        out = greedy_decode(model, PROMPT, max_new_tokens=4)
        assert out.score < 0.0

    def test_zero_tokens_rejected(self, model):
        with pytest.raises(ValueError):
            greedy_decode(model, PROMPT, max_new_tokens=0)


class TestBeam:
    def test_beam1_equals_greedy(self, model):
        greedy = greedy_decode(model, PROMPT, max_new_tokens=4)
        beam = beam_decode(model, PROMPT, max_new_tokens=4, beam_size=1)
        assert beam.tokens == greedy.tokens

    def test_beam_score_at_least_greedy(self, model):
        """Wider beams can only find higher-probability sequences."""
        greedy = greedy_decode(model, PROMPT, max_new_tokens=4)
        beam = beam_decode(model, PROMPT, max_new_tokens=4, beam_size=4)
        assert beam.score >= greedy.score - 1e-9

    def test_beam_monotone_in_width(self, model):
        scores = [beam_decode(model, PROMPT, max_new_tokens=3,
                              beam_size=k).score for k in (1, 2, 4)]
        assert scores == sorted(scores)

    def test_token_count(self, model):
        out = beam_decode(model, PROMPT, max_new_tokens=6, beam_size=3)
        assert len(out.tokens) == 6

    def test_length_penalty_changes_selection_criterion(self, model):
        plain = beam_decode(model, PROMPT, max_new_tokens=3, beam_size=3)
        penalized = beam_decode(model, PROMPT, max_new_tokens=3, beam_size=3,
                                length_penalty=1.0)
        # Same beam set; selection may differ but both must be valid.
        assert len(penalized.tokens) == len(plain.tokens)

    def test_invalid_beam_rejected(self, model):
        with pytest.raises(ValueError):
            beam_decode(model, PROMPT, max_new_tokens=2, beam_size=0)
