"""Regression tests for the op-graph memo cache.

The original ``cached_decode_step_ops`` keyed the memo on
``context_len``, so a stride-1 context sweep — exactly what a decoding
batch produces — missed on every step (BENCH_sim.json recorded a 7.7%
hit rate).  The cache now stores one context-independent skeleton per
``(model, dtype, batch, beams)`` and rebuilds only the attention
operators, which must stay bit-identical to the direct builder.
"""

import pytest

from repro.llm.config import GPTJ_6B, LLAMA2_7B
from repro.llm.datatypes import BFLOAT16, INT8
from repro.llm.graph import cached_decode_step_ops, decode_step_ops
from repro.memo import registered_caches


@pytest.fixture()
def graph_cache():
    cache = registered_caches()["op_graph"]
    cache.clear()
    yield cache
    cache.clear()


class TestBitIdentity:
    @pytest.mark.parametrize("context", [1, 2, 7, 64, 129, 4096])
    def test_matches_direct_builder(self, graph_cache, context):
        cached = cached_decode_step_ops(LLAMA2_7B, BFLOAT16, 4, context)
        direct = tuple(decode_step_ops(LLAMA2_7B, BFLOAT16, 4, context))
        assert cached == direct

    def test_matches_with_beams_and_dtype(self, graph_cache):
        cached = cached_decode_step_ops(GPTJ_6B, INT8, 2, 333, beam_size=3)
        direct = tuple(decode_step_ops(GPTJ_6B, INT8, 2, 333, beam_size=3))
        assert cached == direct

    def test_rejects_bad_shapes(self, graph_cache):
        with pytest.raises(ValueError):
            cached_decode_step_ops(LLAMA2_7B, BFLOAT16, 0, 128)
        with pytest.raises(ValueError):
            cached_decode_step_ops(LLAMA2_7B, BFLOAT16, 1, 0)


class TestHitRate:
    def test_context_sweep_hits(self, graph_cache):
        """Distinct contexts share one skeleton: misses stay O(configs)."""
        for context in range(1, 129):
            cached_decode_step_ops(LLAMA2_7B, BFLOAT16, 8, context)
        stats = graph_cache.stats()
        assert stats.misses == 1
        assert stats.hit_rate > 0.5

    def test_bench_shaped_workload_hits(self, graph_cache):
        """The bench decode workload (few batches, many context buckets)
        must exceed the 50% hit-rate floor from the issue."""
        for batch in (1, 4, 8, 16):
            for bucket in range(16, 16 + 64 * 39, 64):
                cached_decode_step_ops(LLAMA2_7B, BFLOAT16, batch, bucket)
        stats = graph_cache.stats()
        assert stats.misses == 4  # one skeleton per batch size
        assert stats.hit_rate > 0.5
