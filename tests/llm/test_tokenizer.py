"""Hash tokenizer behaviour."""

import pytest
from hypothesis import given, strategies as st

from repro.llm.tokenizer import HashTokenizer


class TestHashTokenizer:
    def test_deterministic(self):
        tok = HashTokenizer()
        assert tok.encode("hello world") == tok.encode("hello world")

    def test_bos_prepended(self):
        tok = HashTokenizer()
        assert tok.encode("hi")[0] == HashTokenizer.BOS_ID

    def test_no_bos(self):
        tok = HashTokenizer()
        ids = tok.encode("hi there", add_bos=False)
        assert len(ids) == 2

    def test_ids_in_range(self):
        tok = HashTokenizer(vocab_size=100)
        ids = tok.encode("many different words appear here today")
        assert all(0 <= i < 100 for i in ids)

    def test_reserved_ids_not_produced(self):
        tok = HashTokenizer(vocab_size=50)
        ids = tok.encode("a b c d e f g", add_bos=False)
        assert all(i >= 4 for i in ids)

    def test_case_insensitive(self):
        tok = HashTokenizer()
        assert tok.encode("Hello") == tok.encode("hello")

    def test_punctuation_separated(self):
        tok = HashTokenizer()
        assert tok.count("hello, world!") == 4  # hello , world !

    def test_count_excludes_bos(self):
        tok = HashTokenizer()
        assert tok.count("three short words") == 3

    def test_empty_text(self):
        tok = HashTokenizer()
        assert tok.encode("") == [HashTokenizer.BOS_ID]
        assert tok.count("") == 0

    def test_tiny_vocab_rejected(self):
        with pytest.raises(ValueError):
            HashTokenizer(vocab_size=4)

    @given(st.text(max_size=60))
    def test_encode_never_crashes_and_stays_in_vocab(self, text):
        tok = HashTokenizer(vocab_size=64)
        assert all(0 <= i < 64 for i in tok.encode(text))
