"""Datatype registry behaviour."""

import pytest

from repro.llm.datatypes import (
    BFLOAT16,
    FLOAT32,
    INT8,
    all_dtypes,
    dtype_by_name,
)


class TestDtypeProperties:
    def test_bytes_widths(self):
        assert FLOAT32.bytes == 4.0
        assert BFLOAT16.bytes == 2.0
        assert INT8.bytes == 1.0

    def test_amx_support_matrix(self):
        assert not FLOAT32.amx_supported
        assert BFLOAT16.amx_supported
        assert INT8.amx_supported

    def test_int8_has_no_optimized_avx_path(self):
        # The root cause of the paper's no-AMX int8 collapse (Fig. 8).
        assert not INT8.avx_optimized
        assert FLOAT32.avx_optimized
        assert BFLOAT16.avx_optimized

    def test_str_is_name(self):
        assert str(BFLOAT16) == "bf16"


class TestLookup:
    @pytest.mark.parametrize("alias,expected", [
        ("bf16", BFLOAT16), ("bfloat16", BFLOAT16),
        ("f32", FLOAT32), ("fp32", FLOAT32), ("float32", FLOAT32),
        ("int8", INT8), ("i8", INT8),
        ("BF16", BFLOAT16),
    ])
    def test_aliases(self, alias, expected):
        assert dtype_by_name(alias) is expected

    def test_unknown_raises_with_known_list(self):
        with pytest.raises(KeyError, match="fp8"):
            dtype_by_name("fp8")

    def test_all_dtypes_complete(self):
        assert set(all_dtypes()) == {FLOAT32, BFLOAT16, INT8}
