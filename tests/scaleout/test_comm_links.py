"""Communication volumes and confidential link selection."""

import pytest

from repro.hardware.gpu import B100, H100_NVL
from repro.llm.config import LLAMA2_7B, LLAMA2_70B
from repro.llm.datatypes import BFLOAT16
from repro.scaleout.comm import (
    Parallelism,
    pipeline_parallel_volume,
    tensor_parallel_volume,
    volume_for,
)
from repro.scaleout.links import (
    IPSEC_EFFICIENCY,
    LinkKind,
    gpu_link,
    routed_bandwidth,
)


class TestTensorParallelVolume:
    def test_degree_one_is_free(self):
        volume = tensor_parallel_volume(LLAMA2_7B, BFLOAT16, 1, 8.0)
        assert volume.bytes_per_step == 0.0
        assert volume.messages_per_step == 0

    def test_two_allreduces_per_layer(self):
        volume = tensor_parallel_volume(LLAMA2_7B, BFLOAT16, 2, 1.0)
        payload = LLAMA2_7B.hidden_size * 2  # bf16 bytes per token
        expected = 2 * LLAMA2_7B.num_layers * payload * (2 * 1 / 2)
        assert volume.bytes_per_step == pytest.approx(expected)

    def test_volume_scales_with_tokens(self):
        one = tensor_parallel_volume(LLAMA2_7B, BFLOAT16, 4, 1.0)
        many = tensor_parallel_volume(LLAMA2_7B, BFLOAT16, 4, 32.0)
        assert many.bytes_per_step == pytest.approx(32 * one.bytes_per_step)

    def test_ring_factor_saturates(self):
        """Per-device ring volume approaches 2x payload as degree grows."""
        d2 = tensor_parallel_volume(LLAMA2_7B, BFLOAT16, 2, 1.0)
        d8 = tensor_parallel_volume(LLAMA2_7B, BFLOAT16, 8, 1.0)
        assert d2.bytes_per_step < d8.bytes_per_step < 2 * d2.bytes_per_step

    def test_validation(self):
        with pytest.raises(ValueError):
            tensor_parallel_volume(LLAMA2_7B, BFLOAT16, 0, 1.0)
        with pytest.raises(ValueError):
            tensor_parallel_volume(LLAMA2_7B, BFLOAT16, 2, 0.0)


class TestPipelineVolume:
    def test_much_lighter_than_tensor(self):
        """Pipeline ships boundary activations only — far less traffic."""
        tensor = tensor_parallel_volume(LLAMA2_70B, BFLOAT16, 2, 8.0)
        pipeline = pipeline_parallel_volume(LLAMA2_70B, BFLOAT16, 2, 8.0)
        assert pipeline.bytes_per_step < tensor.bytes_per_step / 10

    def test_dispatch(self):
        tensor = volume_for(Parallelism.TENSOR, LLAMA2_7B, BFLOAT16, 2, 4.0)
        pipe = volume_for(Parallelism.PIPELINE, LLAMA2_7B, BFLOAT16, 2, 4.0)
        assert tensor.bytes_per_step > pipe.bytes_per_step


class TestLinks:
    def test_nonconfidential_uses_nvlink(self):
        link = gpu_link(H100_NVL, confidential=False)
        assert link.kind is LinkKind.NVLINK

    def test_confidential_h100_routes_through_cpu(self):
        """§V-D4: no RDMA/GPUDirect in CC mode -> ~3 GB/s CPU routing."""
        link = gpu_link(H100_NVL, confidential=True)
        assert link.kind is LinkKind.CPU_ROUTED
        assert link.bandwidth_bytes_s == pytest.approx(3e9)

    def test_confidential_b100_keeps_nvlink(self):
        link = gpu_link(B100, confidential=True)
        assert link.kind is LinkKind.NVLINK
        assert link.bandwidth_bytes_s > 100e9

    def test_cross_host_pays_ipsec(self):
        plain = gpu_link(H100_NVL, confidential=False, same_host=False)
        secure = gpu_link(H100_NVL, confidential=True, same_host=False)
        assert secure.bandwidth_bytes_s == pytest.approx(
            plain.bandwidth_bytes_s * IPSEC_EFFICIENCY)

    def test_ipsec_costs_most_of_the_link(self):
        """Paper cites up to 90% overhead for IPsec-protected traffic."""
        assert IPSEC_EFFICIENCY < 0.60

    def test_routed_bandwidth_gap(self):
        assert routed_bandwidth(True) < routed_bandwidth(False) / 10
