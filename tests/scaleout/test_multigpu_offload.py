"""Multi-GPU scaling and hybrid offload under confidential compute."""

import pytest

from repro.engine.placement import Workload
from repro.hardware.gpu import B100, H100_NVL
from repro.llm.config import LLAMA2_7B, LLAMA2_13B, LLAMA2_70B
from repro.llm.datatypes import BFLOAT16
from repro.scaleout.multigpu import (
    confidential_scaling_penalty,
    fits,
    simulate_multi_gpu,
)
from repro.scaleout.offload import (
    required_host_fraction,
    simulate_offloaded,
)


class TestFits:
    def test_7b_fits_one_gpu(self):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=1,
                            input_tokens=512, output_tokens=128)
        assert fits(workload, H100_NVL, 1)

    def test_70b_needs_two_gpus(self):
        """§V-D4: a single H100 fits ~30B class models, not 70B."""
        workload = Workload(LLAMA2_70B, BFLOAT16, batch_size=1,
                            input_tokens=512, output_tokens=128)
        assert not fits(workload, H100_NVL, 1)
        assert fits(workload, H100_NVL, 2)


class TestMultiGpu:
    @pytest.fixture(scope="class")
    def workload(self):
        return Workload(LLAMA2_70B, BFLOAT16, batch_size=16,
                        input_tokens=512, output_tokens=128)

    def test_does_not_fit_raises(self):
        workload = Workload(LLAMA2_70B, BFLOAT16, batch_size=1,
                            input_tokens=512, output_tokens=128)
        with pytest.raises(ValueError, match="does not fit"):
            simulate_multi_gpu(workload, 1, confidential=False)

    def test_nonconfidential_comm_negligible(self, workload):
        result = simulate_multi_gpu(workload, 2, confidential=False)
        assert result.comm_fraction < 0.10

    def test_confidential_comm_dominates(self, workload):
        """CPU-routed 3 GB/s turns the all-reduces into the bottleneck."""
        result = simulate_multi_gpu(workload, 2, confidential=True)
        assert result.comm_fraction > 0.3

    def test_penalty_grows_with_batch(self):
        small = Workload(LLAMA2_70B, BFLOAT16, batch_size=1,
                         input_tokens=512, output_tokens=128)
        large = Workload(LLAMA2_70B, BFLOAT16, batch_size=32,
                         input_tokens=512, output_tokens=128)
        assert (confidential_scaling_penalty(large, 2)
                > confidential_scaling_penalty(small, 2))

    def test_b100_restores_scaling(self, workload):
        """Protected NVLink makes confidential multi-GPU viable again."""
        h100 = simulate_multi_gpu(workload, 2, confidential=True,
                                  gpu=H100_NVL)
        b100 = simulate_multi_gpu(workload, 2, confidential=True, gpu=B100)
        assert b100.comm_fraction < h100.comm_fraction / 4
        assert b100.throughput_tok_s > h100.throughput_tok_s

    def test_sharding_speeds_up_plain_gpus(self):
        workload = Workload(LLAMA2_13B, BFLOAT16, batch_size=8,
                            input_tokens=512, output_tokens=128)
        one = simulate_multi_gpu(workload, 1, confidential=False)
        two = simulate_multi_gpu(workload, 2, confidential=False)
        assert two.throughput_tok_s > one.throughput_tok_s

    def test_invalid_devices(self, workload):
        with pytest.raises(ValueError):
            simulate_multi_gpu(workload, 0, confidential=False)


class TestOffload:
    def test_no_offload_needed_when_model_fits(self):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=1,
                            input_tokens=256, output_tokens=64)
        assert required_host_fraction(workload) == 0.0

    def test_70b_requires_offload(self):
        workload = Workload(LLAMA2_70B, BFLOAT16, batch_size=1,
                            input_tokens=256, output_tokens=64)
        fraction = required_host_fraction(workload)
        assert 0.2 < fraction < 0.6

    def test_offload_is_transfer_bound(self):
        workload = Workload(LLAMA2_70B, BFLOAT16, batch_size=1,
                            input_tokens=256, output_tokens=64)
        fraction = required_host_fraction(workload)
        result = simulate_offloaded(workload, fraction, confidential=False)
        assert result.transfer_bound

    def test_confidential_offload_far_worse(self):
        """The encrypted bounce buffer throttles the weight stream."""
        workload = Workload(LLAMA2_70B, BFLOAT16, batch_size=1,
                            input_tokens=256, output_tokens=64)
        fraction = required_host_fraction(workload)
        plain = simulate_offloaded(workload, fraction, confidential=False)
        secure = simulate_offloaded(workload, fraction, confidential=True)
        assert secure.step_s > 3 * plain.step_s

    def test_cpu_tee_beats_confidential_offloaded_gpu(self):
        """§V-D1: once weights spill to the host, AMX CPUs win — more so
        confidentially."""
        from repro.core.experiment import cpu_deployment
        from repro.engine.simulator import simulate_generation
        workload = Workload(LLAMA2_70B, BFLOAT16, batch_size=1,
                            input_tokens=256, output_tokens=16)
        fraction = required_host_fraction(workload)
        offloaded = simulate_offloaded(workload, fraction, confidential=True)
        tdx = simulate_generation(workload, cpu_deployment(
            "tdx", sockets_used=2))
        assert tdx.decode_throughput_tok_s > offloaded.throughput_tok_s

    def test_zero_fraction_is_pure_gpu(self):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=1,
                            input_tokens=256, output_tokens=64)
        result = simulate_offloaded(workload, 0.0, confidential=False)
        assert result.transfer_s == 0.0
        assert not result.transfer_bound

    def test_fraction_bounds(self):
        workload = Workload(LLAMA2_7B, BFLOAT16)
        with pytest.raises(ValueError):
            simulate_offloaded(workload, 1.5, confidential=False)
