"""Parity of the vectorized decode-cost engine with the reference loop.

The vectorized path must be numerically interchangeable with the exact
``context_stride=1`` scalar loop (<1e-9 relative error), caches must be
invisible (memoized graphs/costs identical to fresh ones), and
``record_steps`` must never perturb the simulated trajectory.
"""

import numpy as np
import pytest

from repro.core.experiment import cpu_deployment, gpu_deployment
from repro.engine.placement import Workload
from repro.engine.simulator import decode_step_cost, simulate_generation
from repro.engine.vectorized import DecodeCostEngine, decode_cost_engine
from repro.llm.config import LLAMA2_7B, tiny_llama
from repro.llm.datatypes import BFLOAT16, INT8
from repro.llm.graph import (
    cached_decode_step_ops,
    cached_prefill_ops,
    decode_step_affine,
    decode_step_ops,
    prefill_ops,
)
from repro.llm.ops import merge_totals

TINY = tiny_llama()

DEPLOYMENTS = {
    "baremetal": cpu_deployment("baremetal", sockets_used=1),
    "tdx": cpu_deployment("tdx", sockets_used=1),
    "sgx": cpu_deployment("sgx", sockets_used=1),
    "cgpu": gpu_deployment(confidential=True),
}


def _max_rel_err(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.max(np.abs(a - b) / np.abs(a)))


class TestEngineParity:
    @pytest.mark.parametrize("label", sorted(DEPLOYMENTS))
    @pytest.mark.parametrize("model", [TINY, LLAMA2_7B],
                             ids=["tiny", "7b"])
    def test_vectorized_matches_exact_loop(self, label, model):
        workload = Workload(model, BFLOAT16, batch_size=2, input_tokens=96,
                            output_tokens=24)
        deployment = DEPLOYMENTS[label]
        loop = simulate_generation(workload, deployment, context_stride=1,
                                   engine="loop")
        vec = simulate_generation(workload, deployment, context_stride=1,
                                  engine="vectorized")
        assert _max_rel_err(vec.decode_clean_s, loop.decode_clean_s) < 1e-9
        assert vec.prefill_s == loop.prefill_s

    def test_int8_fallback_parity(self):
        """The no-AMX int8 fallback inflates traffic; both paths agree."""
        workload = Workload(LLAMA2_7B, INT8, batch_size=1, input_tokens=64,
                            output_tokens=16)
        deployment = cpu_deployment("tdx", sockets_used=1, amx_enabled=False)
        loop = simulate_generation(workload, deployment, context_stride=1,
                                   engine="loop")
        vec = simulate_generation(workload, deployment, context_stride=1,
                                  engine="vectorized")
        assert _max_rel_err(vec.decode_clean_s, loop.decode_clean_s) < 1e-9

    def test_strided_cadence_matches_loop(self, tdx_1s):
        """Both engines hold a cost for exactly ``stride`` tokens."""
        workload = Workload(TINY, BFLOAT16, batch_size=1, input_tokens=32,
                            output_tokens=30)
        loop = simulate_generation(workload, tdx_1s, context_stride=7,
                                   engine="loop")
        vec = simulate_generation(workload, tdx_1s, context_stride=7,
                                  engine="vectorized")
        assert _max_rel_err(vec.decode_clean_s, loop.decode_clean_s) < 1e-9
        # the cadence itself: constant within a stride window
        assert len(set(vec.decode_clean_s[:7])) == 1

    def test_noise_draws_unchanged_across_engines(self, tdx_1s):
        """Same seed => same RNG draws, whichever engine produced clean."""
        workload = Workload(TINY, BFLOAT16, batch_size=1, input_tokens=32,
                            output_tokens=16)
        loop = simulate_generation(workload, tdx_1s, seed=11, engine="loop")
        vec = simulate_generation(workload, tdx_1s, seed=11,
                                  engine="vectorized")
        np.testing.assert_allclose(
            loop.decode_noisy_s / loop.decode_clean_s,
            vec.decode_noisy_s / vec.decode_clean_s, rtol=1e-12)

    def test_unknown_engine_rejected(self, tdx_1s, small_workload):
        with pytest.raises(ValueError, match="engine"):
            simulate_generation(small_workload, tdx_1s, engine="quantum")


class TestCachedGraphs:
    @pytest.mark.parametrize("model", [TINY, LLAMA2_7B], ids=["tiny", "7b"])
    def test_cached_decode_graph_identical_totals(self, model):
        fresh = decode_step_ops(model, BFLOAT16, 2, 130, 1)
        cached = cached_decode_step_ops(model, BFLOAT16, 2, 130, 1)
        assert merge_totals(fresh) == merge_totals(list(cached))
        assert [op.name for op in fresh] == [op.name for op in cached]

    def test_cached_prefill_graph_identical_totals(self):
        fresh = prefill_ops(TINY, BFLOAT16, 2, 64, 1)
        cached = cached_prefill_ops(TINY, BFLOAT16, 2, 64, 1)
        assert merge_totals(fresh) == merge_totals(list(cached))

    def test_cached_graph_is_shared(self):
        a = cached_decode_step_ops(TINY, BFLOAT16, 1, 77, 1)
        b = cached_decode_step_ops(TINY, BFLOAT16, 1, 77, 1)
        assert a is b

    def test_affine_model_collapses_layers(self):
        affine = decode_step_affine(TINY, BFLOAT16, 1, 1)
        # embed + 11 block ops (collapsed over layers) + final norm + head
        assert len(affine) == 14
        block = {a.name: a for a in affine}
        assert block["qkv_proj"].multiplicity == TINY.num_layers
        assert block["embed_tokens"].multiplicity == 1

    def test_affine_model_reproduces_graph_totals(self):
        context = 513
        ops = decode_step_ops(TINY, BFLOAT16, 2, context, 1)
        totals = merge_totals(ops)
        affine = decode_step_affine(TINY, BFLOAT16, 2, 1)
        assert sum(a.multiplicity * a.flops(context)
                   for a in affine) == pytest.approx(totals["flops"], rel=1e-12)
        assert sum(a.multiplicity * a.kv_read_bytes(context)
                   for a in affine) == pytest.approx(totals["kv_read_bytes"],
                                                     rel=1e-12)


class TestRecordStepsBugfix:
    """``record_steps`` sampling must not perturb the clean trajectory."""

    @pytest.fixture(scope="class")
    def off_stride(self):
        # output 30, stride 7 => sample index 15 is mid-window (15 % 7 = 1)
        return Workload(TINY, BFLOAT16, batch_size=1, input_tokens=32,
                        output_tokens=30)

    @pytest.mark.parametrize("engine", ["loop", "vectorized"])
    def test_clean_independent_of_recording(self, off_stride, tdx_1s, engine):
        plain = simulate_generation(off_stride, tdx_1s, context_stride=7,
                                    engine=engine)
        recorded = simulate_generation(off_stride, tdx_1s, context_stride=7,
                                       record_steps=True, engine=engine)
        np.testing.assert_array_equal(plain.decode_clean_s,
                                      recorded.decode_clean_s)

    def test_sample_step_costed_exactly(self, off_stride, tdx_1s):
        result = simulate_generation(off_stride, tdx_1s, context_stride=7,
                                     record_steps=True, engine="loop")
        sample_context = off_stride.input_tokens + off_stride.output_tokens // 2
        exact = decode_step_cost(off_stride, tdx_1s, sample_context)
        assert result.sample_decode_step.total_s == exact.total_s
        # ... while the clean trajectory keeps the stride-cadence cost.
        window_context = off_stride.input_tokens + 14  # last recompute at 14
        cadence = decode_step_cost(off_stride, tdx_1s, window_context)
        assert result.decode_clean_s[15] == cadence.total_s


class TestEngineCache:
    def test_engine_shared_across_input_lengths(self, tdx_1s):
        """The cost curve is shape-keyed: input sweeps reuse one engine."""
        short = Workload(TINY, BFLOAT16, batch_size=4, input_tokens=64,
                         output_tokens=8)
        long = short.with_(input_tokens=384)
        assert decode_cost_engine(short, tdx_1s) \
            is decode_cost_engine(long, tdx_1s)

    def test_engine_distinct_across_batch(self, tdx_1s):
        a = Workload(TINY, BFLOAT16, batch_size=1, input_tokens=64,
                     output_tokens=8)
        b = a.with_(batch_size=2)
        assert decode_cost_engine(a, tdx_1s) \
            is not decode_cost_engine(b, tdx_1s)

    def test_uncached_engine_matches_cached(self, sgx_1s):
        workload = Workload(TINY, BFLOAT16, batch_size=2, input_tokens=48,
                            output_tokens=8)
        contexts = np.arange(48, 56)
        fresh = DecodeCostEngine(workload, sgx_1s).step_costs(contexts)
        cached = decode_cost_engine(workload, sgx_1s).step_costs(contexts)
        np.testing.assert_array_equal(fresh, cached)
