"""Generation simulator: shapes, determinism, noise, strides."""

import numpy as np
import pytest

from repro.core.experiment import cpu_deployment, gpu_deployment
from repro.engine.placement import Workload
from repro.engine.simulator import simulate_encode, simulate_generation
from repro.llm.config import LLAMA2_7B, SBERT_BASE
from repro.llm.datatypes import BFLOAT16


@pytest.fixture(scope="module")
def workload():
    return Workload(LLAMA2_7B, BFLOAT16, batch_size=2, input_tokens=128,
                    output_tokens=32)


@pytest.fixture(scope="module")
def deployment():
    return cpu_deployment("tdx", sockets_used=1)


class TestShapes:
    def test_one_step_per_output_token(self, workload, deployment):
        result = simulate_generation(workload, deployment)
        assert result.decode_clean_s.shape == (32,)
        assert result.decode_noisy_s.shape == (32,)

    def test_prefill_positive(self, workload, deployment):
        assert simulate_generation(workload, deployment).prefill_s > 0

    def test_throughput_definitions(self, workload, deployment):
        result = simulate_generation(workload, deployment)
        assert result.decode_throughput_tok_s > result.throughput_tok_s
        assert result.total_time_s == pytest.approx(
            result.prefill_s + result.decode_time_s)

    def test_metadata(self, workload, deployment):
        result = simulate_generation(workload, deployment)
        assert result.backend_name == "tdx"
        assert result.framework_name == "ipex"


class TestDeterminismAndNoise:
    def test_same_seed_same_noise(self, workload, deployment):
        a = simulate_generation(workload, deployment, seed=7)
        b = simulate_generation(workload, deployment, seed=7)
        np.testing.assert_array_equal(a.decode_noisy_s, b.decode_noisy_s)

    def test_different_seed_different_noise(self, workload, deployment):
        a = simulate_generation(workload, deployment, seed=1)
        b = simulate_generation(workload, deployment, seed=2)
        assert not np.array_equal(a.decode_noisy_s, b.decode_noisy_s)

    def test_clean_is_noise_free(self, workload, deployment):
        a = simulate_generation(workload, deployment, seed=1)
        b = simulate_generation(workload, deployment, seed=2)
        np.testing.assert_array_equal(a.decode_clean_s, b.decode_clean_s)

    def test_tee_noisier_than_baremetal(self, workload):
        def spread(backend):
            many = Workload(LLAMA2_7B, BFLOAT16, batch_size=1,
                            input_tokens=64, output_tokens=256)
            result = simulate_generation(many, cpu_deployment(
                backend, sockets_used=1), seed=5)
            samples = result.decode_noisy_s / result.decode_clean_s
            return samples.std()
        assert spread("tdx") > spread("baremetal")

    def test_tee_produces_outliers(self):
        """~0.64% of TEE samples should be Z>3 outliers (§III-D)."""
        from repro.core.metrics import outlier_fraction
        many = Workload(LLAMA2_7B, BFLOAT16, batch_size=1, input_tokens=64,
                        output_tokens=2048)
        result = simulate_generation(many, cpu_deployment(
            "tdx", sockets_used=1), seed=3)
        fraction = outlier_fraction(result.decode_noisy_s)
        assert 0.001 < fraction < 0.03


class TestContextStride:
    def test_stride_one_is_exact(self, workload, deployment):
        exact = simulate_generation(workload, deployment, context_stride=1)
        approx = simulate_generation(workload, deployment, context_stride=8)
        assert approx.decode_time_s == pytest.approx(exact.decode_time_s,
                                                     rel=0.02)

    def test_invalid_stride(self, workload, deployment):
        with pytest.raises(ValueError):
            simulate_generation(workload, deployment, context_stride=0)

    def test_costs_grow_with_context(self, deployment):
        long_run = Workload(LLAMA2_7B, BFLOAT16, batch_size=8,
                            input_tokens=64, output_tokens=512)
        result = simulate_generation(long_run, deployment, context_stride=1)
        assert result.decode_clean_s[-1] > result.decode_clean_s[0]


class TestTraceRecording:
    def test_records_on_request(self, workload, deployment):
        result = simulate_generation(workload, deployment, record_steps=True)
        assert result.prefill_step is not None
        assert result.sample_decode_step is not None
        assert len(result.decode_trace()) > 0

    def test_no_recording_by_default(self, workload, deployment):
        result = simulate_generation(workload, deployment)
        with pytest.raises(ValueError, match="record_steps"):
            result.decode_trace()


class TestGpuPath:
    def test_gpu_runs(self, workload):
        result = simulate_generation(workload, gpu_deployment())
        assert result.decode_throughput_tok_s > 0

    def test_gpu_much_faster_than_cpu(self, workload, deployment):
        cpu = simulate_generation(workload, deployment)
        gpu = simulate_generation(workload, gpu_deployment(confidential=False))
        assert gpu.decode_throughput_tok_s > 5 * cpu.decode_throughput_tok_s


class TestEncode:
    def test_encode_positive(self):
        workload = Workload(SBERT_BASE, BFLOAT16, batch_size=8,
                            input_tokens=64)
        seconds = simulate_encode(workload, cpu_deployment(
            "tdx", sockets_used=1))
        assert 0 < seconds < 1.0

    def test_encode_rejects_decoder(self, deployment):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=1,
                            input_tokens=64)
        with pytest.raises(ValueError, match="encoder"):
            simulate_encode(workload, deployment)
