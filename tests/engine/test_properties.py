"""Property-based invariants of the execution engine (hypothesis).

These pin the cost model's physical sanity across random workloads and
placements: TEEs never speed things up, more resources never slow the
noise-free model down, throughput is monotone in batch, and every time
is finite and positive.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.experiment import cpu_deployment, gpu_deployment
from repro.engine.placement import Workload
from repro.engine.roofline import WorkingSets, cost_model_for
from repro.engine.simulator import simulate_generation
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16, INT8
from repro.llm.graph import decode_step_ops

workload_shapes = st.tuples(
    st.sampled_from([1, 2, 4, 8, 32, 128]),       # batch
    st.sampled_from([16, 64, 256, 1024]),         # input
    st.sampled_from([1, 2, 4]),                   # beam
)

SETTINGS = settings(max_examples=20, deadline=None)


def make_workload(shape, dtype=BFLOAT16, output_tokens=4):
    batch, input_tokens, beam = shape
    return Workload(LLAMA2_7B, dtype, batch_size=batch,
                    input_tokens=input_tokens, output_tokens=output_tokens,
                    beam_size=beam)


def step_total(deployment, workload, context=None):
    model = cost_model_for(deployment)
    ctx = context or workload.input_tokens
    ops = decode_step_ops(workload.model, workload.dtype,
                          workload.batch_size, ctx, workload.beam_size)
    weights = workload.model.weight_bytes(workload.dtype.bytes)
    kv = (workload.sequences * ctx
          * workload.model.kv_bytes_per_token(workload.dtype.bytes))
    sets = WorkingSets(weights=weights, kv=kv, activations=64e6)
    return model.step_cost(ops, sets, workload.dtype).total_s


class TestTeeNeverFaster:
    @SETTINGS
    @given(workload_shapes)
    def test_tdx_slower_than_baremetal(self, shape):
        workload = make_workload(shape)
        base = step_total(cpu_deployment("baremetal", sockets_used=1),
                          workload)
        tdx = step_total(cpu_deployment("tdx", sockets_used=1), workload)
        assert tdx > base

    @SETTINGS
    @given(workload_shapes)
    def test_sgx_slower_than_baremetal(self, shape):
        workload = make_workload(shape)
        base = step_total(cpu_deployment("baremetal", sockets_used=1),
                          workload)
        sgx = step_total(cpu_deployment("sgx", sockets_used=1), workload)
        assert sgx > base

    @SETTINGS
    @given(workload_shapes)
    def test_cgpu_slower_than_gpu(self, shape):
        workload = make_workload(shape)
        gpu = step_total(gpu_deployment(confidential=False), workload)
        cgpu = step_total(gpu_deployment(confidential=True), workload)
        assert cgpu > gpu


class TestResourceMonotonicity:
    @SETTINGS
    @given(workload_shapes)
    def test_more_cores_never_slower(self, shape):
        workload = make_workload(shape)
        few = step_total(cpu_deployment("baremetal", sockets_used=1,
                                        cores_per_socket_used=8), workload)
        many = step_total(cpu_deployment("baremetal", sockets_used=1,
                                         cores_per_socket_used=48), workload)
        assert many <= few + 1e-12

    @SETTINGS
    @given(st.sampled_from([16, 64, 256, 1024]))
    def test_throughput_monotone_in_batch(self, input_tokens):
        deployment = cpu_deployment("baremetal", sockets_used=1)
        previous = 0.0
        for batch in (1, 8, 64):
            workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=batch,
                                input_tokens=input_tokens, output_tokens=4)
            result = simulate_generation(workload, deployment)
            assert result.decode_throughput_tok_s >= previous
            previous = result.decode_throughput_tok_s


class TestFiniteness:
    @SETTINGS
    @given(workload_shapes,
           st.sampled_from(["baremetal", "vm", "sgx", "tdx"]),
           st.sampled_from([BFLOAT16, INT8]))
    def test_all_times_finite_positive(self, shape, backend, dtype):
        workload = make_workload(shape, dtype=dtype)
        result = simulate_generation(
            workload, cpu_deployment(backend, sockets_used=1))
        assert math.isfinite(result.prefill_s) and result.prefill_s > 0
        assert result.decode_clean_s.min() > 0
        assert math.isfinite(result.decode_time_s)

    @SETTINGS
    @given(workload_shapes)
    def test_longer_context_never_cheaper(self, shape):
        workload = make_workload(shape)
        deployment = cpu_deployment("baremetal", sockets_used=1)
        short = step_total(deployment, workload, context=64)
        long = step_total(deployment, workload, context=2048)
        assert long >= short
