"""Seed-determinism matrix across engines and execution modes.

The simulator must be a pure function of ``(workload, deployment,
seed)``: repeated runs, the ``auto`` vs explicit ``vectorized`` engine,
cold vs memoized caches, and serial vs process-pool sweeps all have to
produce bit-identical results.  The scalar reference loop is allowed
only float-reassociation noise against the vectorized engine.
"""

import math

import pytest

from repro.core.experiment import cpu_deployment, gpu_deployment
from repro.core.sweep import sweep_workload
from repro.engine.placement import Workload
from repro.engine.simulator import simulate_generation
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16
from repro.memo import clear_all_caches

WORKLOAD = Workload(LLAMA2_7B, BFLOAT16, batch_size=2, input_tokens=128,
                    output_tokens=24)

DEPLOYMENTS = {
    "baremetal": cpu_deployment("baremetal", sockets_used=1),
    "tdx": cpu_deployment("tdx", sockets_used=1),
    "cgpu": gpu_deployment(confidential=True),
}


def _fingerprint(result):
    """Every float the simulation exposes, bitwise."""
    import numpy as np
    return (result.prefill_s,
            np.asarray(result.decode_clean_s).tobytes(),
            np.asarray(result.decode_noisy_s).tobytes())


@pytest.mark.parametrize("label", sorted(DEPLOYMENTS))
@pytest.mark.parametrize("seed", [0, 7])
def test_same_seed_bit_identical_across_runs(label, seed):
    deployment = DEPLOYMENTS[label]
    first = simulate_generation(WORKLOAD, deployment, seed=seed)
    second = simulate_generation(WORKLOAD, deployment, seed=seed)
    assert _fingerprint(first) == _fingerprint(second)


@pytest.mark.parametrize("label", sorted(DEPLOYMENTS))
def test_auto_engine_is_vectorized_bitwise(label):
    deployment = DEPLOYMENTS[label]
    auto = simulate_generation(WORKLOAD, deployment, seed=3, engine="auto")
    vec = simulate_generation(WORKLOAD, deployment, seed=3,
                              engine="vectorized")
    assert _fingerprint(auto) == _fingerprint(vec)


@pytest.mark.parametrize("label", sorted(DEPLOYMENTS))
def test_cold_and_warm_caches_bit_identical(label):
    deployment = DEPLOYMENTS[label]
    clear_all_caches()
    cold = simulate_generation(WORKLOAD, deployment, seed=5)
    warm = simulate_generation(WORKLOAD, deployment, seed=5)
    assert _fingerprint(cold) == _fingerprint(warm)


def test_different_seeds_differ():
    """The noise process actually consumes the seed (no fake determinism)."""
    a = simulate_generation(WORKLOAD, DEPLOYMENTS["tdx"], seed=0)
    b = simulate_generation(WORKLOAD, DEPLOYMENTS["tdx"], seed=1)
    assert _fingerprint(a) != _fingerprint(b)
    # The deterministic (noise-free) components still agree.
    assert _fingerprint(a)[:2] == _fingerprint(b)[:2]


def test_loop_engine_matches_vectorized_within_reassociation():
    for label, deployment in DEPLOYMENTS.items():
        vec = simulate_generation(WORKLOAD, deployment, seed=2,
                                  engine="vectorized", context_stride=1)
        loop = simulate_generation(WORKLOAD, deployment, seed=2,
                                   engine="loop", context_stride=1)
        assert math.isclose(vec.prefill_s, loop.prefill_s, rel_tol=1e-9)
        assert math.isclose(vec.decode_time_s, loop.decode_time_s,
                            rel_tol=1e-9), label


class TestChaosDeterminism:
    """The fault-injection layer is part of the purity contract: for a
    fixed (stream, schedule, seeds) the fault timeline, the retry
    jitter, and the failure-aware FleetReport are bit-identical across
    runs — and unaffected by which decode engine ran beforehand."""

    @staticmethod
    def _chaos_run():
        from repro.faults import RetryPolicy, mtbf_schedule
        from repro.fleet import fixed_fleet, poisson_arrivals, replica_spec
        spec = replica_spec("tdx", max_batch=16, kv_capacity_tokens=65536)
        requests = poisson_arrivals(12, 4.0, 128, 24, seed=11)
        schedule = mtbf_schedule([0, 1], mtbf_s=8.0, horizon_s=20.0, seed=5)
        fleet = fixed_fleet(spec, 2, faults=schedule,
                            retry_policy=RetryPolicy(timeout_s=15.0,
                                                     max_attempts=3, seed=5))
        report = fleet.run(requests)
        return (report.to_dict(),
                [a.to_dict() for a in report.fault_events],
                [s.to_dict() for s in report.shed])

    def test_same_seed_identical_fault_timeline_and_report(self):
        first = self._chaos_run()
        second = self._chaos_run()
        assert first == second

    @pytest.mark.parametrize("engine", ["auto", "vectorized", "loop"])
    def test_chaos_run_invariant_to_engine_mode(self, engine):
        """Interleaving decode-engine runs (any mode) must not perturb
        the chaos layer — no hidden global RNG or cache coupling."""
        baseline = self._chaos_run()
        simulate_generation(WORKLOAD, DEPLOYMENTS["tdx"], seed=3,
                            engine=engine, context_stride=1)
        assert self._chaos_run() == baseline

    def test_retry_jitter_reproducible(self):
        from repro.faults import RetryPolicy
        policy = RetryPolicy(jitter_frac=0.3, seed=9)
        series = [(rid, k, policy.backoff_s(rid, k))
                  for rid in range(5) for k in range(1, 4)]
        twin = RetryPolicy(jitter_frac=0.3, seed=9)
        assert series == [(rid, k, twin.backoff_s(rid, k))
                          for rid in range(5) for k in range(1, 4)]


def test_serial_and_parallel_sweeps_bit_identical():
    deployments = {label: DEPLOYMENTS[label] for label in ("baremetal", "tdx")}
    kwargs = dict(base=WORKLOAD, deployments=deployments,
                  parameter="batch_size", values=[1, 2, 4], seed=9)
    serial = sweep_workload("determinism-serial", parallel=False, **kwargs)
    pooled = sweep_workload("determinism-parallel", parallel=True,
                            max_workers=2, **kwargs)
    assert list(serial) == list(pooled) == [1, 2, 4]
    for value in serial:
        for label in deployments:
            assert _fingerprint(serial[value].results[label]) == \
                _fingerprint(pooled[value].results[label])
