"""Calibration constants: structural sanity.

These tests don't pin values (the band tests do that end to end); they
pin the *structure* — every derate is a fraction, every framework has
the efficiency entries the cost model will ask for, and the documented
relationships between constants hold.
"""

from repro.engine import calibration as cal
from repro.frameworks.base import cpu_frameworks, framework_by_name
from repro.hardware.engines import Engine


class TestDerates:
    def test_fractions_in_range(self):
        for name in ("MEM_ENCRYPTION_DERATE", "SGX_MEM_ENCRYPTION_DERATE",
                     "UPI_CRYPTO_DERATE", "CGPU_RATE_DERATE",
                     "B100_HBM_ENCRYPTION_DERATE"):
            value = getattr(cal, name)
            assert 0.0 < value < 0.5, name

    def test_taxes_small(self):
        assert 0.0 < cal.VM_VIRTUALIZATION_TAX < 0.10
        assert 0.0 < cal.TDX_EXTRA_TAX < cal.VM_VIRTUALIZATION_TAX

    def test_walk_multipliers_ordered(self):
        """Native < plain-VM EPT <= TDX secure-EPT."""
        assert 1.0 < cal.EPT_WALK_MULTIPLIER <= cal.TDX_WALK_MULTIPLIER

    def test_sgx_and_tdx_use_same_mee_generation(self):
        """The paper: 'the cost of security is similar for SGX and TDX'."""
        ratio = cal.SGX_MEM_ENCRYPTION_DERATE / cal.MEM_ENCRYPTION_DERATE
        assert 0.8 < ratio < 1.3


class TestFrameworkTables:
    def test_every_cpu_framework_has_avx_mfu(self):
        for framework in cpu_frameworks():
            assert (framework.name, "avx512") in cal.FRAMEWORK_MFU

    def test_only_ipex_has_amx_mfu(self):
        amx_entries = [name for (name, engine) in cal.FRAMEWORK_MFU
                       if engine == "amx"]
        assert amx_entries == ["ipex"]

    def test_every_framework_has_mem_eff(self):
        for framework in cpu_frameworks():
            assert framework.name in cal.FRAMEWORK_MEM_EFF
        assert "vllm-gpu" in cal.FRAMEWORK_MEM_EFF

    def test_mfus_are_fractions(self):
        assert all(0.0 < value <= 1.0 for value in cal.FRAMEWORK_MFU.values())
        assert all(0.0 < value <= 1.0
                   for value in cal.FRAMEWORK_MEM_EFF.values())

    def test_ipex_beats_others_on_memory(self):
        """Fig. 3's root cause: IPEX sustains the most bandwidth."""
        others = [value for name, value in cal.FRAMEWORK_MEM_EFF.items()
                  if name not in ("ipex", "vllm-gpu")]
        assert cal.FRAMEWORK_MEM_EFF["ipex"] > max(others)

    def test_gpu_mfu_reachable_via_framework(self):
        assert framework_by_name("vllm-gpu").mfu(Engine.CUDA_TENSOR) == \
            cal.FRAMEWORK_MFU[("vllm-gpu", "cuda_tensor")]


class TestNoiseModel:
    def test_outlier_probability_matches_paper(self):
        """The paper excludes ~0.64% of samples as Z>3 outliers."""
        assert 0.003 < cal.TEE_OUTLIER_PROBABILITY < 0.01

    def test_tee_noisier_than_base(self):
        assert cal.TEE_NOISE_SIGMA > cal.BASE_NOISE_SIGMA

    def test_outliers_are_large(self):
        assert cal.TEE_OUTLIER_SCALE > 3.0


class TestFallbackModel:
    def test_inflation_reasonable(self):
        assert 2.0 <= cal.INT8_FALLBACK_TRAFFIC_INFLATION <= 8.0

    def test_fallback_remote_fraction_extreme(self):
        assert cal.INT8_FALLBACK_REMOTE_FRACTION > 0.5
