"""Workload/placement/deployment validation."""

import pytest

from repro.engine.placement import (
    CpuPlacement,
    Deployment,
    GpuPlacement,
    Workload,
    weight_footprint,
)
from repro.frameworks.base import IPEX, LLAMACPP, VLLM_CPU, VLLM_GPU
from repro.hardware.cpu import EMR1, EMR2
from repro.hardware.gpu import H100_NVL
from repro.llm.config import LLAMA2_7B, LLAMA2_13B, LLAMA2_70B
from repro.llm.datatypes import BFLOAT16, INT8
from repro.tee.backends import BAREMETAL, CGPU


class TestWorkload:
    def test_sequences_fold_beams(self):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=6, beam_size=4)
        assert workload.sequences == 24

    def test_user_tokens_ignore_beams(self):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=6,
                            output_tokens=128, beam_size=4)
        assert workload.user_tokens == 6 * 128

    def test_context_window_enforced(self):
        with pytest.raises(ValueError, match="positions"):
            Workload(LLAMA2_7B, BFLOAT16, input_tokens=4000, output_tokens=128)

    def test_with_changes_field(self):
        workload = Workload(LLAMA2_7B, BFLOAT16)
        assert workload.with_(batch_size=8).batch_size == 8
        assert workload.batch_size == 1

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            Workload(LLAMA2_7B, BFLOAT16, batch_size=0)

    def test_nonfinite_dimensions_rejected(self):
        # Regression: NaN made every comparison in the old min() guard
        # False, so nan dimensions validated clean.
        for bad in (float("nan"), float("inf"), -float("inf")):
            for dim in ("batch_size", "input_tokens", "output_tokens",
                        "beam_size"):
                with pytest.raises(ValueError, match="finite"):
                    Workload(LLAMA2_7B, BFLOAT16, **{dim: bad})


class TestCpuPlacement:
    def test_cores_default_all(self):
        assert CpuPlacement(EMR2, sockets_used=2).cores == 120

    def test_cores_subset(self):
        placement = CpuPlacement(EMR2, sockets_used=1,
                                 cores_per_socket_used=16)
        assert placement.cores == 16
        assert placement.cores_per_socket == 16

    def test_socket_bounds(self):
        with pytest.raises(ValueError):
            CpuPlacement(EMR1, sockets_used=3)

    def test_core_bounds(self):
        with pytest.raises(ValueError):
            CpuPlacement(EMR1, cores_per_socket_used=64)


class TestDeployment:
    def test_device_mismatch_backend(self):
        with pytest.raises(ValueError, match="backend"):
            Deployment(CpuPlacement(EMR2), CGPU, IPEX)

    def test_device_mismatch_framework(self):
        with pytest.raises(ValueError, match="framework"):
            Deployment(CpuPlacement(EMR2), BAREMETAL, VLLM_GPU)

    def test_dtype_unsupported_by_framework(self):
        deployment = Deployment(CpuPlacement(EMR2), BAREMETAL, VLLM_CPU)
        with pytest.raises(ValueError, match="int8"):
            deployment.validate_workload(Workload(LLAMA2_7B, INT8))

    def test_70b_does_not_fit_h100(self):
        """§V-D4: a single H100 fits ~30B, not 70B."""
        deployment = Deployment(GpuPlacement(H100_NVL), CGPU, VLLM_GPU)
        with pytest.raises(ValueError, match="does not fit"):
            deployment.validate_workload(Workload(LLAMA2_70B, BFLOAT16))

    def test_13b_fits_h100(self):
        deployment = Deployment(GpuPlacement(H100_NVL), CGPU, VLLM_GPU)
        deployment.validate_workload(Workload(LLAMA2_13B, BFLOAT16))

    def test_70b_needs_two_sockets_worth_of_memory(self):
        """Fig. 5's premise: 70B bf16 exceeds one socket under load."""
        bytes_needed = weight_footprint(Workload(LLAMA2_70B, BFLOAT16), IPEX)
        assert bytes_needed > 0.5 * EMR1.mem_per_socket_bytes


class TestWeightFootprint:
    def test_dtype_width(self):
        workload = Workload(LLAMA2_7B, INT8)
        assert weight_footprint(workload, IPEX) == LLAMA2_7B.num_parameters

    def test_llamacpp_override(self):
        """llama.cpp's mixed quantization shrinks the footprint."""
        workload = Workload(LLAMA2_7B, BFLOAT16)
        assert weight_footprint(workload, LLAMACPP) < weight_footprint(
            workload, IPEX) / 2
