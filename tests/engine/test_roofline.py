"""Roofline cost model: every TEE mechanism must act in the right
direction on the right term."""

import pytest

from repro.core.experiment import cpu_deployment, gpu_deployment
from repro.engine.roofline import (
    CpuCostModel,
    GpuCostModel,
    WorkingSets,
    cost_model_for,
)
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16, INT8
from repro.llm.graph import decode_step_ops
from repro.memsim.pages import HugepagePolicy


def decode_ops(dtype=BFLOAT16, batch=1, ctx=256):
    return decode_step_ops(LLAMA2_7B, dtype, batch, ctx)


def working_sets(dtype=BFLOAT16, batch=1, ctx=256):
    weights = LLAMA2_7B.weight_bytes(dtype.bytes)
    kv = batch * ctx * LLAMA2_7B.kv_bytes_per_token(dtype.bytes)
    return WorkingSets(weights=weights, kv=kv, activations=50e6)


def step_time(deployment, dtype=BFLOAT16, batch=1, ctx=256):
    model = cost_model_for(deployment)
    return model.step_cost(decode_ops(dtype, batch, ctx),
                           working_sets(dtype, batch, ctx), dtype).total_s


class TestMechanismDirections:
    def test_memory_encryption_slows_memory_bound_steps(self):
        base = step_time(cpu_deployment("baremetal", sockets_used=1))
        tdx = step_time(cpu_deployment("tdx", sockets_used=1))
        assert tdx > base

    def test_vm_between_baremetal_and_tdx(self):
        base = step_time(cpu_deployment("baremetal", sockets_used=1))
        vm = step_time(cpu_deployment("vm", sockets_used=1))
        tdx = step_time(cpu_deployment("tdx", sockets_used=1))
        assert base < vm < tdx

    def test_sgx_between_baremetal_and_tdx_single_socket(self):
        """Insight 5: SGX runs on bare metal and beats TDX."""
        base = step_time(cpu_deployment("baremetal", sockets_used=1))
        sgx = step_time(cpu_deployment("sgx", sockets_used=1))
        tdx = step_time(cpu_deployment("tdx", sockets_used=1))
        assert base < sgx < tdx

    def test_more_cores_faster_until_memory_bound(self):
        few = step_time(cpu_deployment("baremetal", sockets_used=1,
                                       cores_per_socket_used=2))
        many = step_time(cpu_deployment("baremetal", sockets_used=1,
                                        cores_per_socket_used=32))
        assert many < few

    def test_two_sockets_faster_for_memory_bound(self):
        one = step_time(cpu_deployment("baremetal", sockets_used=1))
        two = step_time(cpu_deployment("baremetal", sockets_used=2))
        assert two < one

    def test_hugepages_help_vms(self):
        thp = step_time(cpu_deployment(
            "vm", sockets_used=2, hugepages=HugepagePolicy.TRANSPARENT_2M))
        full = step_time(cpu_deployment(
            "vm", sockets_used=2, hugepages=HugepagePolicy.RESERVED_1G))
        assert full < thp

    def test_tdx_cannot_benefit_from_1g_pages(self):
        """Insight 7: requesting 1G pages changes nothing under TDX."""
        thp = step_time(cpu_deployment(
            "tdx", sockets_used=2, hugepages=HugepagePolicy.TRANSPARENT_2M))
        requested_1g = step_time(cpu_deployment(
            "tdx", sockets_used=2, hugepages=HugepagePolicy.RESERVED_1G))
        assert requested_1g == pytest.approx(thp)

    def test_snc_hurts_tees_only(self):
        tee_on = step_time(cpu_deployment("tdx", sockets_used=1,
                                          snc_clusters=2))
        tee_off = step_time(cpu_deployment("tdx", sockets_used=1))
        assert tee_on > tee_off * 1.2
        bare_on = step_time(cpu_deployment("baremetal", sockets_used=1,
                                           snc_clusters=2))
        bare_off = step_time(cpu_deployment("baremetal", sockets_used=1))
        assert bare_on <= bare_off

    def test_hyperthreads_add_tax(self):
        quiet = step_time(cpu_deployment("tdx", sockets_used=1))
        noisy = step_time(cpu_deployment("tdx", sockets_used=1,
                                         expose_hyperthreads=True))
        assert noisy > quiet

    def test_glibc_allocator_costs_traffic(self):
        tc = step_time(cpu_deployment("baremetal", sockets_used=1,
                                      cores_per_socket_used=60),
                       batch=64, ctx=2048)
        glibc = step_time(cpu_deployment("baremetal", sockets_used=1,
                                         cores_per_socket_used=60,
                                         tcmalloc=False),
                          batch=64, ctx=2048)
        assert glibc > tc

    def test_amx_off_slows_compute_bound(self):
        amx = step_time(cpu_deployment("baremetal", sockets_used=1),
                        batch=256)
        no_amx = step_time(cpu_deployment("baremetal", sockets_used=1,
                                          amx_enabled=False), batch=256)
        assert no_amx > amx

    def test_int8_fallback_catastrophic(self):
        amx = step_time(cpu_deployment("baremetal", sockets_used=1),
                        dtype=INT8)
        fallback = step_time(cpu_deployment("baremetal", sockets_used=1,
                                            amx_enabled=False), dtype=INT8)
        assert fallback > 3 * amx


class TestStepCostStructure:
    def test_compute_vs_memory_bound_flag(self):
        model = CpuCostModel(cpu_deployment("baremetal", sockets_used=1))
        small = model.step_cost(decode_ops(batch=1), working_sets(batch=1),
                                BFLOAT16)
        big = model.step_cost(decode_ops(batch=512), working_sets(batch=512),
                              BFLOAT16)
        assert not small.is_compute_bound()
        assert big.is_compute_bound()

    def test_sgx_exits_charged(self):
        model = CpuCostModel(cpu_deployment("sgx", sockets_used=1))
        step = model.step_cost(decode_ops(), working_sets(), BFLOAT16)
        assert step.exits_s > 0

    def test_tax_multiplier_applied(self):
        model = CpuCostModel(cpu_deployment("tdx", sockets_used=1))
        step = model.step_cost(decode_ops(), working_sets(), BFLOAT16)
        raw = sum(cost.total_s for cost in step.op_costs) + step.exits_s
        assert step.total_s == pytest.approx(raw * step.tax_multiplier
                                             + step.fixed_s)

    def test_wrong_placement_type(self):
        with pytest.raises(TypeError):
            CpuCostModel(gpu_deployment())
        with pytest.raises(TypeError):
            GpuCostModel(cpu_deployment())


class TestGpuModel:
    def test_cgpu_slower_than_gpu(self):
        gpu = cost_model_for(gpu_deployment(confidential=False))
        cgpu = cost_model_for(gpu_deployment(confidential=True))
        ops, sets = decode_ops(batch=4), working_sets(batch=4)
        assert (cgpu.step_cost(ops, sets, BFLOAT16).total_s
                > gpu.step_cost(ops, sets, BFLOAT16).total_s)

    def test_bounce_cost_only_with_bounce_buffer(self):
        gpu = cost_model_for(gpu_deployment(confidential=False))
        cgpu = cost_model_for(gpu_deployment(confidential=True))
        ops, sets = decode_ops(), working_sets()
        with_io = cgpu.step_cost(ops, sets, BFLOAT16, io_bytes=1e6).total_s
        without = cgpu.step_cost(ops, sets, BFLOAT16, io_bytes=0.0).total_s
        assert with_io > without
        gpu_io = gpu.step_cost(ops, sets, BFLOAT16, io_bytes=1e6).total_s
        gpu_no = gpu.step_cost(ops, sets, BFLOAT16, io_bytes=0.0).total_s
        assert gpu_io == gpu_no

    def test_gpu_has_no_translation_or_paging(self):
        model = cost_model_for(gpu_deployment())
        step = model.step_cost(decode_ops(), working_sets(), BFLOAT16)
        assert all(cost.translation_s == 0.0 and cost.paging_s == 0.0
                   for cost in step.op_costs)
