"""Trace aggregation (the Fig. 7 pipeline)."""

import pytest

from repro.core.experiment import cpu_deployment
from repro.engine.placement import Workload
from repro.engine.simulator import simulate_generation
from repro.engine.trace import (
    TraceEvent,
    block_layer_summary,
    decoder_block_share,
    layer_overheads,
)
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16
from repro.llm.graph import BLOCK_OP_NAMES
from repro.llm.ops import Phase


@pytest.fixture(scope="module")
def traces():
    workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=4, input_tokens=128,
                        output_tokens=8)
    results = {}
    for backend in ("vm", "tdx"):
        result = simulate_generation(
            workload, cpu_deployment(backend, sockets_used=1),
            record_steps=True)
        results[backend] = result.decode_trace()
    return results


class TestSummary:
    def test_every_block_op_present(self, traces):
        summary = block_layer_summary(traces["tdx"])
        assert set(summary) == set(BLOCK_OP_NAMES)

    def test_shares_sum_to_one(self, traces):
        summary = block_layer_summary(traces["tdx"])
        assert sum(stat.share_of_block for stat in summary.values()) == \
            pytest.approx(1.0)

    def test_attention_and_mlp_dominate(self, traces):
        """Fig. 7: self-attention and the SiLU MLP are the biggest costs."""
        summary = block_layer_summary(traces["tdx"])
        heavy = (summary["self_attention"].share_of_block
                 + summary["gate_up_proj"].share_of_block
                 + summary["down_proj"].share_of_block
                 + summary["qkv_proj"].share_of_block)
        assert heavy > 0.8

    def test_layernorms_small_share(self, traces):
        """Fig. 7: the norms form only a few percent of block time."""
        summary = block_layer_summary(traces["tdx"])
        norms = (summary["input_layernorm"].share_of_block
                 + summary["post_attention_layernorm"].share_of_block)
        assert norms < 0.08

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            block_layer_summary([])


class TestBlockShare:
    def test_decoder_blocks_dominate(self, traces):
        """The paper measures 99.9% of time in decoder blocks; with the
        LM head included in 'outside', we still expect the vast bulk."""
        assert decoder_block_share(traces["tdx"]) > 0.9


class TestLayerOverheads:
    def test_all_layers_have_positive_tdx_overhead(self, traces):
        overheads = layer_overheads(traces["tdx"], traces["vm"])
        assert set(overheads) == set(BLOCK_OP_NAMES)
        assert all(value > 0 for value in overheads.values())

    def test_events_from_step_roundtrip(self, traces):
        event = traces["tdx"][0]
        assert isinstance(event, TraceEvent)
        assert event.phase is Phase.DECODE
