"""Property-based chaos: conservation and backoff laws under generated
fault schedules and arrival processes.

Together these generate well over a hundred random fault schedules and
backoff/hazard configurations per run (20 + 30 + 60 + 8 in the default
selection, plus 60 more behind ``-m slow``) and assert the invariants
the ``chaos`` audit family pins on fixed seeds: every request completes
or is shed exactly once, schedules are deterministic per seed, and
retry backoff is monotone non-decreasing.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import (
    FaultEvent,
    FaultSchedule,
    RetryPolicy,
    mtbf_schedule,
)
from repro.fleet import fixed_fleet, poisson_arrivals, replica_spec

TDX = replica_spec("tdx", max_batch=16, kv_capacity_tokens=65536)

SIM_SETTINGS = dict(deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def fault_events(replicas=2, horizon=12.0):
    """Strategy: one arbitrary valid fault event within the horizon."""
    times = st.floats(0.0, horizon, allow_nan=False, allow_infinity=False)
    rids = st.integers(0, replicas - 1)
    durations = st.floats(0.5, 6.0)
    crash = st.builds(
        FaultEvent, times, st.just("crash"), rids,
        restart_after_s=st.one_of(st.none(), st.floats(0.5, 8.0)))
    hang = st.builds(FaultEvent, times, st.just("hang"), rids,
                     duration_s=durations)
    slowdown = st.builds(FaultEvent, times, st.just("slowdown"), rids,
                         duration_s=durations,
                         factor=st.floats(1.1, 4.0))
    link = st.builds(FaultEvent, times, st.just("link_degrade"), rids,
                     duration_s=durations,
                     factor=st.floats(0.05, 1.0))
    boot = st.builds(FaultEvent, times, st.just("boot_failure"), rids,
                     duration_s=durations)
    attest = st.builds(FaultEvent, times, st.just("attestation_failure"),
                       rids, duration_s=durations)
    return st.one_of(crash, hang, slowdown, link, boot, attest)


def fault_schedules(replicas=2):
    return st.lists(fault_events(replicas), max_size=5).map(
        lambda events: FaultSchedule(tuple(events)))


@settings(max_examples=20, **SIM_SETTINGS)
@given(schedule=fault_schedules(),
       arrival_seed=st.integers(0, 10_000),
       retry_seed=st.integers(0, 10_000))
def test_conservation_under_random_schedules(schedule, arrival_seed,
                                             retry_seed):
    """submitted == completed + shed, every id exactly once, for any
    fault schedule x arrival process x retry seed."""
    requests = poisson_arrivals(6, rate_per_s=3.0, mean_prompt=64,
                                mean_output=12, seed=arrival_seed)
    report = fixed_fleet(
        TDX, 2, faults=schedule,
        retry_policy=RetryPolicy(timeout_s=20.0, max_attempts=3,
                                 seed=retry_seed)).run(requests)
    completed = [o.request.request_id for o in report.outcomes]
    shed = [s.request.request_id for s in report.shed]
    assert sorted(completed + shed) == [r.request_id for r in requests]
    assert report.submitted == len(requests)
    assert report.wasted_tokens >= 0
    assert report.cost_usd >= 0
    for usage in report.replicas:
        # The rental window closes at *release*, which can postdate the
        # last request finish (``end_s``): a fault tick may land after
        # the work drained and retire the instance then.
        window_end = report.end_s if usage.retired_s is None \
            else max(report.end_s, usage.retired_s)
        window_s = max(0.0, window_end - usage.provisioned_s)
        assert usage.billed_hours * 3600.0 <= window_s + 1e-9


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000),
       mtbf=st.floats(2.0, 60.0),
       horizon=st.floats(10.0, 120.0),
       replicas=st.integers(1, 4))
def test_mtbf_schedules_deterministic_and_bounded(seed, mtbf, horizon,
                                                  replicas):
    """Hazard schedules are reproducible per seed and stay in-horizon."""
    rids = list(range(replicas))
    first = mtbf_schedule(rids, mtbf_s=mtbf, horizon_s=horizon, seed=seed)
    second = mtbf_schedule(rids, mtbf_s=mtbf, horizon_s=horizon, seed=seed)
    assert first.to_dicts() == second.to_dicts()
    assert all(0.0 <= e.time_s < horizon for e in first)
    assert all(e.replica_id in rids for e in first)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000),
       request_id=st.integers(0, 1_000_000),
       base=st.floats(0.05, 5.0),
       multiplier=st.floats(1.0, 4.0),
       jitter=st.floats(0.0, 1.0))
def test_backoff_monotone_and_deterministic(seed, request_id, base,
                                            multiplier, jitter):
    """Backoff delays never shrink with the attempt number, and the
    jittered series is a pure function of (seed, request, attempt)."""
    policy = RetryPolicy(backoff_base_s=base, backoff_multiplier=multiplier,
                         jitter_frac=jitter, max_attempts=8, seed=seed)
    twin = RetryPolicy(backoff_base_s=base, backoff_multiplier=multiplier,
                       jitter_frac=jitter, max_attempts=8, seed=seed)
    delays = [policy.backoff_s(request_id, k) for k in range(1, 8)]
    assert all(b >= a for a, b in zip(delays, delays[1:]))
    assert all(d >= 0.0 for d in delays)
    assert delays == [twin.backoff_s(request_id, k) for k in range(1, 8)]


@settings(max_examples=8, **SIM_SETTINGS)
@given(schedule=fault_schedules(), seed=st.integers(0, 10_000))
def test_random_schedule_replay_is_bit_identical(schedule, seed):
    """Any schedule replays to the identical report on a fresh fleet."""
    requests = poisson_arrivals(5, rate_per_s=3.0, mean_prompt=64,
                                mean_output=12, seed=seed)
    policy = RetryPolicy(timeout_s=20.0, max_attempts=3, seed=seed)
    first = fixed_fleet(TDX, 2, faults=schedule,
                        retry_policy=policy).run(requests)
    second = fixed_fleet(TDX, 2, faults=schedule,
                         retry_policy=policy).run(requests)
    assert first.to_dict() == second.to_dict()
    assert ([a.to_dict() for a in first.fault_events]
            == [a.to_dict() for a in second.fault_events])


@pytest.mark.slow
@settings(max_examples=60, **SIM_SETTINGS)
@given(schedule=fault_schedules(replicas=3),
       arrival_seed=st.integers(0, 10_000))
def test_conservation_deep_sweep(schedule, arrival_seed):
    """Wider slow-marked sweep: 3 replicas, bigger streams."""
    requests = poisson_arrivals(10, rate_per_s=4.0, mean_prompt=64,
                                mean_output=16, seed=arrival_seed)
    report = fixed_fleet(
        TDX, 3, faults=schedule,
        retry_policy=RetryPolicy(timeout_s=20.0, max_attempts=4,
                                 seed=arrival_seed)).run(requests)
    completed = [o.request.request_id for o in report.outcomes]
    shed = [s.request.request_id for s in report.shed]
    assert sorted(completed + shed) == [r.request_id for r in requests]
