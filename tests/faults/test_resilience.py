"""Retry/backoff policies, degradation policies, attestation gate."""

import pytest

from repro.faults import (
    DEGRADATION_MODES,
    SHED_REASONS,
    DegradationPolicy,
    FleetAttestation,
    RetryPolicy,
    needs_attestation,
)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_multiplier=2.0,
                             jitter_frac=0.0)
        assert policy.backoff_s(0, 1) == pytest.approx(1.0)
        assert policy.backoff_s(0, 2) == pytest.approx(2.0)
        assert policy.backoff_s(0, 3) == pytest.approx(4.0)

    def test_jitter_differs_across_requests_same_seed(self):
        policy = RetryPolicy(jitter_frac=0.5, seed=3)
        delays = {policy.backoff_s(rid, 1) for rid in range(8)}
        assert len(delays) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_frac=-0.1)


class TestDegradationPolicy:
    def test_modes_are_closed_set(self):
        assert set(DEGRADATION_MODES) == {"shed", "spill"}
        with pytest.raises(ValueError):
            DegradationPolicy(mode="panic")

    def test_shed_reasons_are_closed_set(self):
        assert set(SHED_REASONS) == {"retries-exhausted", "degraded",
                                     "unroutable"}

    def test_max_hold_must_be_positive(self):
        with pytest.raises(ValueError):
            DegradationPolicy(max_hold_s=0.0)


class TestFleetAttestation:
    def test_tee_kinds(self):
        assert needs_attestation("tdx")
        assert needs_attestation("cgpu")
        assert not needs_attestation("baremetal")

    def test_enroll_readmit_cycle(self):
        gate = FleetAttestation()
        gate.enroll(0)
        assert gate.readmit(0), "freshly enrolled replica must verify"
        assert gate.verifications == 1
        assert gate.failures == 0

    def test_revoke_then_readmit_reprovisions(self):
        gate = FleetAttestation()
        gate.enroll(0)
        assert gate.revoke(0), "revoked platform must fail verification"
        assert gate.failures == 1
        assert gate.readmit(0), "re-provisioned platform verifies again"
        assert gate.verifications >= 2
