"""Fault schedules: validation, ordering, builders, MTBF hazard."""

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    mtbf_schedule,
    one_shot,
    recurring,
)


class TestFaultEvent:
    def test_crash_needs_no_duration(self):
        event = FaultEvent(5.0, "crash", 0)
        assert event.duration_s == 0.0
        assert event.restart_after_s is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultEvent(1.0, "meteor", 0)

    @pytest.mark.parametrize("kind", ["hang", "slowdown", "link_degrade",
                                      "attestation_failure"])
    def test_timed_kinds_need_duration(self, kind):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(1.0, kind, 0, duration_s=0.0,
                       factor=2.0 if kind == "slowdown" else 0.5)

    def test_slowdown_factor_must_exceed_one(self):
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(1.0, "slowdown", 0, duration_s=2.0, factor=0.9)

    def test_link_degrade_factor_is_a_fraction(self):
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(1.0, "link_degrade", 0, duration_s=2.0, factor=1.5)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time"):
            FaultEvent(-1.0, "crash", 0)

    def test_to_dict_round_trips_fields(self):
        event = FaultEvent(3.0, "slowdown", 1, duration_s=4.0, factor=2.5)
        d = event.to_dict()
        assert d["kind"] == "slowdown"
        assert d["factor"] == 2.5


class TestFaultSchedule:
    def test_events_sorted_by_time_then_replica(self):
        schedule = FaultSchedule((
            FaultEvent(9.0, "crash", 0),
            FaultEvent(1.0, "crash", 1),
            FaultEvent(1.0, "crash", 0),
        ))
        times = [(e.time_s, e.replica_id) for e in schedule]
        assert times == [(1.0, 0), (1.0, 1), (9.0, 0)]

    def test_add_merges_and_resorts(self):
        merged = one_shot("crash", 0, 5.0) + one_shot("crash", 1, 1.0)
        assert [e.time_s for e in merged] == [1.0, 5.0]

    def test_empty(self):
        assert len(FaultSchedule.empty()) == 0
        assert list(FaultSchedule.empty()) == []

    def test_recurring_builder(self):
        schedule = recurring("hang", 0, start_s=2.0, period_s=3.0, count=3,
                             duration_s=1.0)
        assert [e.time_s for e in schedule] == [2.0, 5.0, 8.0]
        assert all(e.kind == "hang" for e in schedule)


class TestMtbfSchedule:
    def test_deterministic_per_seed(self):
        a = mtbf_schedule([0, 1], mtbf_s=10.0, horizon_s=60.0, seed=4)
        b = mtbf_schedule([0, 1], mtbf_s=10.0, horizon_s=60.0, seed=4)
        assert a.to_dicts() == b.to_dicts()

    def test_seed_actually_consumed(self):
        a = mtbf_schedule([0, 1], mtbf_s=10.0, horizon_s=60.0, seed=4)
        b = mtbf_schedule([0, 1], mtbf_s=10.0, horizon_s=60.0, seed=5)
        assert a.to_dicts() != b.to_dicts()

    def test_all_events_inside_horizon(self):
        schedule = mtbf_schedule([0, 1, 2], mtbf_s=5.0, horizon_s=30.0,
                                 seed=1)
        assert all(0 <= e.time_s < 30.0 for e in schedule)
        assert all(e.kind in FAULT_KINDS for e in schedule)

    def test_lower_mtbf_means_more_events(self):
        rare = mtbf_schedule([0], mtbf_s=100.0, horizon_s=200.0, seed=2)
        frequent = mtbf_schedule([0], mtbf_s=5.0, horizon_s=200.0, seed=2)
        assert len(frequent) > len(rare)

    def test_crashes_carry_repair_time(self):
        schedule = mtbf_schedule([0], mtbf_s=2.0, horizon_s=100.0, seed=3)
        crashes = [e for e in schedule if e.kind == "crash"]
        assert crashes, "expected at least one crash at this rate"
        assert all(e.restart_after_s >= 1.0 for e in crashes)

    def test_bad_mtbf_rejected(self):
        with pytest.raises(ValueError):
            mtbf_schedule([0], mtbf_s=0.0, horizon_s=10.0)


class TestFaultInjector:
    def test_due_pops_in_order(self):
        injector = FaultInjector(one_shot("crash", 0, 1.0)
                                 + one_shot("crash", 1, 2.0))
        assert [e.replica_id for e in injector.due(1.5)] == [0]
        assert [e.replica_id for e in injector.due(2.5)] == [1]
        assert injector.exhausted

    def test_record_keeps_applied_history(self):
        injector = FaultInjector(one_shot("crash", 0, 1.0))
        (event,) = injector.due(1.0)
        injector.record(event, applied_s=1.25, effect="crash: evacuated 0")
        assert len(injector.applied) == 1
        assert injector.applied[0].applied_s == 1.25
