"""End-to-end chaos: every fault kind against the fleet simulator."""

import pytest

from repro.faults import (
    DegradationPolicy,
    FaultSchedule,
    RetryPolicy,
    one_shot,
    recurring,
)
from repro.fleet import fixed_fleet, poisson_arrivals, replica_spec

TDX = replica_spec("tdx", max_batch=16, kv_capacity_tokens=65536)
CGPU = replica_spec("cgpu", max_batch=16, kv_capacity_tokens=65536)


def stream(n=14, seed=11, rate=4.0):
    return poisson_arrivals(n, rate, 128, 32, seed=seed)


def ids(outcomes):
    return sorted(o.request.request_id for o in outcomes)


class TestZeroFaultTwin:
    def test_empty_schedule_is_bit_identical(self):
        requests = stream()
        bare = fixed_fleet(TDX, 2).run(requests)
        armed = fixed_fleet(TDX, 2, faults=FaultSchedule.empty()).run(requests)
        assert bare.to_dict() == armed.to_dict()

    def test_retry_policy_alone_is_bit_identical(self):
        requests = stream()
        bare = fixed_fleet(TDX, 2).run(requests)
        armed = fixed_fleet(TDX, 2, retry_policy=RetryPolicy()).run(requests)
        assert bare.to_dict() == armed.to_dict()


class TestCrash:
    def test_crash_requeues_and_completes_everything(self):
        requests = stream()
        report = fixed_fleet(
            TDX, 2, faults=one_shot("crash", 0, 2.0, restart_after_s=5.0),
            retry_policy=RetryPolicy(seed=1)).run(requests)
        assert ids(report.outcomes) == [r.request_id for r in requests]
        assert not report.shed
        assert report.fault_events
        crashed = next(u for u in report.replicas if u.replica_id == 0)
        assert crashed.crashes == 1

    def test_crash_wastes_inflight_tokens(self):
        report = fixed_fleet(
            TDX, 1, faults=one_shot("crash", 0, 3.0, restart_after_s=2.0),
            retry_policy=RetryPolicy(seed=1)).run(stream())
        assert report.wasted_tokens > 0
        assert report.retries > 0
        assert report.wasted_cost_usd > 0

    def test_permanent_crash_stops_the_meter(self):
        report = fixed_fleet(
            TDX, 2, faults=one_shot("crash", 1, 2.0),
            retry_policy=RetryPolicy(seed=1)).run(stream())
        dead = next(u for u in report.replicas if u.replica_id == 1)
        assert dead.retired_s is not None
        assert dead.billed_hours * 3600.0 == pytest.approx(
            dead.retired_s - dead.provisioned_s)

    def test_rebooting_crash_keeps_billing(self):
        report = fixed_fleet(
            TDX, 2, faults=one_shot("crash", 1, 2.0, restart_after_s=4.0),
            retry_policy=RetryPolicy(seed=1)).run(stream())
        rebooted = next(u for u in report.replicas if u.replica_id == 1)
        assert rebooted.retired_s is None
        assert rebooted.billed_hours * 3600.0 == pytest.approx(report.end_s)


class TestOtherFaultKinds:
    def test_hang_delays_but_loses_nothing(self):
        requests = stream()
        nominal = fixed_fleet(TDX, 2).run(requests)
        hung = fixed_fleet(
            TDX, 2, faults=one_shot("hang", 0, 1.0, duration_s=6.0),
            retry_policy=RetryPolicy(timeout_s=60.0, seed=1)).run(requests)
        assert ids(hung.outcomes) == ids(nominal.outcomes)
        assert hung.makespan_s > nominal.makespan_s

    def test_slowdown_stretches_makespan(self):
        requests = stream()
        nominal = fixed_fleet(TDX, 2).run(requests)
        slowed = fixed_fleet(
            TDX, 2,
            faults=(one_shot("slowdown", 0, 0.5, duration_s=20.0, factor=3.0)
                    + one_shot("slowdown", 1, 0.5, duration_s=20.0,
                               factor=3.0))).run(requests)
        assert slowed.makespan_s > nominal.makespan_s
        assert ids(slowed.outcomes) == ids(nominal.outcomes)

    def test_link_degrade_is_milder_than_raw_slowdown(self):
        requests = stream()
        nominal = fixed_fleet(TDX, 2).run(requests)
        degraded = fixed_fleet(
            TDX, 2,
            faults=(one_shot("link_degrade", 0, 0.5, duration_s=20.0,
                             factor=0.25)
                    + one_shot("link_degrade", 1, 0.5, duration_s=20.0,
                               factor=0.25))).run(requests)
        # comm_share=0.15 of a 4x bandwidth cut: a visible but bounded hit.
        assert degraded.makespan_s >= nominal.makespan_s
        assert degraded.makespan_s < nominal.makespan_s * 2.0

    def test_boot_failure_on_running_replica_queues_for_reboot(self):
        schedule = (one_shot("boot_failure", 0, 1.0, duration_s=5.0)
                    + one_shot("crash", 0, 2.0, restart_after_s=1.0))
        report = fixed_fleet(TDX, 2, faults=schedule,
                             retry_policy=RetryPolicy(seed=1)).run(stream())
        assert ids(report.outcomes) == list(range(14))
        effects = [a.effect for a in report.fault_events]
        assert any("queued" in e for e in effects)

    def test_attestation_failure_quarantines_tee_replica(self):
        report = fixed_fleet(
            TDX, 2,
            faults=one_shot("attestation_failure", 0, 1.0, duration_s=5.0),
            retry_policy=RetryPolicy(seed=1)).run(stream())
        assert ids(report.outcomes) == list(range(14))
        (applied,) = report.fault_events
        assert "attestation" in applied.effect

    def test_recurring_faults_all_apply(self):
        schedule = recurring("hang", 0, start_s=1.0, period_s=2.0, count=3,
                             duration_s=0.5)
        report = fixed_fleet(TDX, 2, faults=schedule,
                             retry_policy=RetryPolicy(seed=1)).run(stream())
        assert len(report.fault_events) == 3


class TestDegradation:
    def test_all_dead_without_policy_sheds_unroutable(self):
        schedule = one_shot("crash", 0, 1.0) + one_shot("crash", 1, 1.0)
        report = fixed_fleet(TDX, 2, faults=schedule,
                             retry_policy=RetryPolicy(seed=1)).run(stream())
        assert report.submitted == 14
        completed = len(report.outcomes)
        assert completed + len(report.shed) == 14
        assert all(s.reason == "unroutable" for s in report.shed)

    def test_shed_mode_sheds_lowest_priority_first(self):
        requests = stream()
        for i, r in enumerate(requests):
            object.__setattr__(r, "priority", 1 if i < 10 else 5)
        schedule = (one_shot("crash", 0, 0.5, restart_after_s=30.0)
                    + one_shot("crash", 1, 0.5, restart_after_s=30.0))
        report = fixed_fleet(
            TDX, 2, faults=schedule, retry_policy=RetryPolicy(seed=1),
            degradation=DegradationPolicy(mode="shed", max_hold_s=3.0),
        ).run(requests)
        assert report.shed
        shed_priorities = sorted(s.request.priority for s in report.shed)
        # Low priority value = more important; the shed set is dominated
        # by the high-value (less important) class.
        assert shed_priorities[0] >= 1
        assert all(s.reason in ("degraded", "retries-exhausted",
                                "unroutable") for s in report.shed)
        assert len(report.outcomes) + len(report.shed) == 14

    def test_spill_mode_provisions_emergency_capacity(self):
        schedule = (one_shot("crash", 0, 0.5, restart_after_s=60.0)
                    + one_shot("crash", 1, 0.5, restart_after_s=60.0))
        report = fixed_fleet(
            TDX, 2, faults=schedule, retry_policy=RetryPolicy(seed=1),
            degradation=DegradationPolicy(mode="spill", max_hold_s=2.0,
                                          spill_spec=CGPU, max_spill=2),
        ).run(stream())
        assert len(report.outcomes) + len(report.shed) == 14
        kinds = {u.kind for u in report.replicas}
        assert "cgpu" in kinds, "spill replicas should appear in the bill"
        assert len(report.outcomes) > 0


class TestReportEdgeCases:
    def test_all_dead_report_degenerate_metrics(self):
        schedule = one_shot("crash", 0, 0.0) + one_shot("crash", 1, 0.0)
        report = fixed_fleet(TDX, 2, faults=schedule,
                             retry_policy=RetryPolicy(seed=1)).run(stream())
        assert not report.outcomes, "t=0 crashes should kill everything"
        with pytest.raises(ValueError, match="no completed"):
            report.ttft_percentile(99.0)
        d = report.to_dict()
        assert d["usd_per_mtok"] is None
        assert d["ttft_p99_s"] is None
        assert d["e2e_p50_s"] is None
        assert report.slo_attainment(2.0) == 0.0
        assert len(report.shed) == 14

    def test_empty_request_list_rejected(self):
        with pytest.raises(ValueError, match="no requests"):
            fixed_fleet(TDX, 1, faults=FaultSchedule.empty(),
                        retry_policy=RetryPolicy(seed=0)).run([])

    def test_makespan_covers_retried_first_arrival(self):
        # The very first arrival is evacuated by a crash and completes
        # only on retry: makespan must reflect the retried finish.
        requests = stream(4, rate=0.2)
        nominal = fixed_fleet(TDX, 1).run(requests)
        first_arrival = min(r.arrival_s for r in requests)
        crash_s = first_arrival + 0.3
        report = fixed_fleet(
            TDX, 1, faults=one_shot("crash", 0, crash_s, restart_after_s=3.0),
            retry_policy=RetryPolicy(seed=2)).run(requests)
        assert len(report.outcomes) == 4
        assert report.retries >= 1
        first = min(report.outcomes, key=lambda o: o.request.arrival_s)
        # The retried first arrival finishes only after the reboot, and
        # the makespan window still anchors at its original arrival.
        assert first.finish_s > crash_s + 3.0
        assert report.start_s == pytest.approx(first_arrival)
        assert report.end_s >= first.finish_s
        assert report.makespan_s >= nominal.makespan_s
