"""Unit tests: the top-level snapshot/restore API and its guards.

Bit-identical resume parity over full configurations is pinned by the
``state.*`` audit checks (which the pytest adapter already runs); these
tests cover the API contract — payload shape, disk round-trips, and the
refusal paths restore must take on mismatched or tampered input.
"""

import json

import pytest

from repro.fleet import fixed_fleet, poisson_arrivals, replica_spec
from repro.state import (
    CURRENT_STATE_VERSION,
    StateIntegrityError,
    StateSchemaError,
    StateVersionError,
)
from repro.state.checkpoint import (
    FLEET_SNAPSHOT_KIND,
    read_snapshot,
    restore,
    snapshot,
    write_snapshot,
)


def _spec(kind="tdx"):
    return replica_spec(kind, max_batch=16, kv_capacity_tokens=65536)


def _fleet(count=1, kind="tdx"):
    return fixed_fleet(_spec(kind), count)


def _stream(n=6, seed=3):
    return poisson_arrivals(n, rate_per_s=4.0, mean_prompt=64,
                            mean_output=16, seed=seed)


class TestSnapshotShape:
    def test_payload_is_versioned_discriminated_strict_json(self):
        payload = snapshot(_fleet())
        assert payload["state_version"] == CURRENT_STATE_VERSION
        assert payload["kind"] == FLEET_SNAPSHOT_KIND
        # Strict JSON: no NaN/inf anywhere, round-trips losslessly.
        assert json.loads(json.dumps(payload, allow_nan=False)) == payload

    def test_idle_fleet_roundtrips(self):
        fresh = _fleet()
        restore(fresh, snapshot(_fleet()))
        assert snapshot(fresh) == snapshot(_fleet())

    def test_mid_run_snapshot_resumes_to_identical_report(self):
        stream = _stream()
        baseline = _fleet().run(stream)
        running = _fleet()
        running.begin_run(stream)
        running.run_tick()
        running.run_tick()
        fresh = _fleet()
        restore(fresh, json.loads(json.dumps(snapshot(running))))
        while fresh.run_active:
            fresh.run_tick()
        assert fresh.finish_run().to_dict() == baseline.to_dict()


class TestRestoreGuards:
    def test_wrong_kind_refused(self):
        payload = dict(snapshot(_fleet()), kind="something_else")
        with pytest.raises(StateSchemaError, match="something_else"):
            restore(_fleet(), payload)

    def test_newer_version_refused(self):
        payload = dict(snapshot(_fleet()),
                       state_version=CURRENT_STATE_VERSION + 1)
        with pytest.raises(StateVersionError):
            restore(_fleet(), payload)

    def test_restore_into_different_fleet_size_refused(self):
        payload = snapshot(_fleet(count=2))
        with pytest.raises(StateIntegrityError, match="replica count"):
            restore(_fleet(count=1), payload)

    def test_restore_into_different_tick_refused(self):
        payload = snapshot(_fleet())
        target = fixed_fleet(_spec(), 1, tick_s=0.125)
        with pytest.raises(StateIntegrityError, match="tick"):
            restore(target, payload)

    def test_restore_into_mid_run_simulator_refused(self):
        busy = _fleet()
        busy.begin_run(_stream())
        busy.run_tick()
        with pytest.raises(StateIntegrityError, match="freshly built"):
            restore(busy, snapshot(_fleet()))

    def test_tampered_reference_refused(self):
        running = _fleet()
        running.begin_run(_stream())
        running.run_tick()
        payload = snapshot(running)
        payload["state"]["run"]["pending"] = [987654]
        with pytest.raises(StateIntegrityError, match="unknown request"):
            restore(_fleet(), payload)


class TestDiskRoundtrip:
    def test_write_read_snapshot(self, tmp_path):
        payload = snapshot(_fleet())
        path = tmp_path / "fleet.json"
        write_snapshot(path, payload)
        assert read_snapshot(path) == payload

    def test_non_object_snapshot_file_refused(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(StateSchemaError, match="JSON object"):
            read_snapshot(path)
