"""Kill-and-resume integration: a SIGKILLed sweep finishes identically.

Two tiers: the tier-1 test forks a child that completes one point of a
cheap grid and SIGKILLs itself, then resumes in-process and compares
journal bytes against an uninterrupted twin.  The ``slow``-marked test
is the full acceptance path — a real ``scripts/chaos.py sweep --resume``
subprocess is SIGKILLed mid-grid and ``scripts/resume.py`` finishes it;
the merged rows must equal an uninterrupted sweep's and reproduce the
committed ``golden.chaos_mtbf`` series exactly.
"""

import json
import os
import signal
import subprocess
import sys
import time
from multiprocessing import get_context
from pathlib import Path

import pytest

from repro.faults.sweep import iter_mtbf_rows
from repro.state.points import point_runner
from repro.state.runner import GridPoint, RESULTS_FILE, SweepRunner, SweepSpec

REPO = Path(__file__).resolve().parents[2]
SCRIPTS = REPO / "scripts"


@point_runner("test_kill_echo")
def _kill_echo(params, context):
    return {"tag": params["tag"], "square": params["n"] * params["n"]}


def _cheap_spec() -> SweepSpec:
    return SweepSpec(points=tuple(
        GridPoint(index, f"p{index}", "test_kill_echo",
                  {"tag": f"p{index}", "n": index})
        for index in range(3)))


def test_sigkilled_run_resumes_byte_identically(tmp_path):
    """Fork, journal one point, SIGKILL; resume matches an unkilled twin."""
    interrupted = tmp_path / "interrupted"
    SweepRunner.create(interrupted, _cheap_spec())

    def victim() -> None:
        SweepRunner.open(interrupted).run(max_points=1)
        os.kill(os.getpid(), signal.SIGKILL)

    child = get_context("fork").Process(target=victim)
    child.start()
    child.join(30)
    assert child.exitcode == -signal.SIGKILL

    runner = SweepRunner.open(interrupted)
    assert sorted(runner.completed()) == [0], "kill lost the journaled point"
    assert sorted(runner.run()) == [0, 1, 2]

    twin = tmp_path / "twin"
    SweepRunner.create(twin, _cheap_spec()).run()
    assert (interrupted / RESULTS_FILE).read_bytes() \
        == (twin / RESULTS_FILE).read_bytes()


def _golden_series(rows: list[dict]) -> dict[str, float]:
    """Rows -> the ``golden.chaos_mtbf`` series keys (same flattening)."""
    series: dict[str, float] = {}
    for row in rows:
        label = "inf" if row["mtbf_s"] is None else f"{row['mtbf_s']:g}s"
        prefix = f"{row['kind']}/mtbf_{label}"
        series[f"{prefix}/slo_attainment"] = row["slo_attainment"]
        if row["usd_per_mtok"] is not None:
            series[f"{prefix}/usd_per_mtok"] = row["usd_per_mtok"]
        series[f"{prefix}/retries"] = float(row["retries"])
        series[f"{prefix}/wasted_tokens"] = float(row["wasted_tokens"])
        series[f"{prefix}/shed"] = float(row["shed"])
    return series


@pytest.mark.slow
def test_sigkilled_chaos_sweep_resumes_to_golden(tmp_path):
    """Acceptance: SIGKILL a chaos sweep subprocess mid-grid, resume via
    scripts/resume.py, and reproduce the golden chaos_mtbf grid exactly."""
    run_dir = tmp_path / "run"
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    sweep = subprocess.Popen(
        [sys.executable, str(SCRIPTS / "chaos.py"), "sweep",
         "--resume", str(run_dir)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    # Kill as soon as the first point lands in the WAL: with ~5 of the 6
    # default grid points still to run, the SIGKILL lands mid-grid.
    wal = run_dir / RESULTS_FILE
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline and sweep.poll() is None:
        if wal.exists() and wal.read_bytes().count(b"\n") >= 1:
            break
        time.sleep(0.002)
    journaled_at_kill = (wal.read_bytes().count(b"\n")
                         if wal.exists() else 0)
    sweep.kill()
    sweep.wait(30)
    assert sweep.returncode == -signal.SIGKILL, \
        "sweep finished before the kill landed; grid too fast to interrupt"
    assert 1 <= journaled_at_kill < 6, journaled_at_kill

    merged_path = tmp_path / "merged.json"
    resume = subprocess.run(
        [sys.executable, str(SCRIPTS / "resume.py"), str(run_dir),
         "--json", str(merged_path)],
        env=env, capture_output=True, text=True, timeout=240)
    assert resume.returncode == 0, resume.stderr
    merged = json.loads(merged_path.read_text())

    expected = json.loads(json.dumps(list(iter_mtbf_rows())))
    assert merged == expected, "resumed rows diverged from a clean sweep"

    golden = json.loads(
        (REPO / "src/repro/validate/golden_data/chaos_mtbf.json")
        .read_text())
    assert _golden_series(merged) == golden["series"]
