"""Mid-boot checkpoint/restore and the resumable attestation-tax grid."""

import json

import pytest

from repro.faults import FaultEvent, FaultSchedule, RetryPolicy
from repro.fleet import fixed_fleet, poisson_arrivals, replica_spec
from repro.fleet.table import RequestTable
from repro.state import attest_grid
from repro.state.runner import SweepRunner, read_journal
from repro.tee.boot import BOOT_PHASES, attest_tax_sweep, boot_profile

SPEC = replica_spec("tdx", max_batch=8, kv_capacity_tokens=16384,
                    boot=boot_profile("tdx"))

FAULTS = FaultSchedule((
    FaultEvent(time_s=12.0, kind="attestation_failure", replica_id=0,
               duration_s=6.0),
))
RETRY = RetryPolicy(timeout_s=60.0, max_attempts=4, seed=3)

STREAM = poisson_arrivals(20, rate_per_s=0.8, mean_prompt=128,
                          mean_output=48, seed=5)


def _fleet(engine):
    return fixed_fleet(SPEC, 2, faults=FAULTS, retry_policy=RETRY,
                       engine=engine)


def _requests(engine):
    return RequestTable.from_requests(STREAM) if engine == "event" else STREAM


class TestMidBootResume:
    @pytest.mark.parametrize("engine", ["stepped", "event"])
    def test_mid_boot_snapshot_restores_bit_identical(self, engine):
        baseline = _fleet(engine).run(_requests(engine)).to_dict()
        running = _fleet(engine)
        running.begin_run(_requests(engine))
        snapshots = {}
        while running.run_active:
            running.run_tick()
            now = running.run_clock_s
            for replica in running.replicas:
                phase = replica.boot_phase(now)
                if phase is not None and phase not in snapshots:
                    # The wire format is the contract: JSON round-trip.
                    snapshots[phase] = json.loads(
                        json.dumps(running.to_state()))
        assert running.finish_run().to_dict() == baseline
        # The attestation fault at t=12 restarts replica 0 mid-boot, so
        # every phase (including a re-entered one) gets a snapshot.
        assert set(snapshots) == set(BOOT_PHASES)
        for phase, payload in snapshots.items():
            fresh = _fleet(engine)
            fresh.from_state(payload)
            while fresh.run_active:
                fresh.run_tick()
            assert fresh.finish_run().to_dict() == baseline, phase

    def test_restored_replica_recovers_boot_phase(self):
        running = _fleet("stepped")
        running.begin_run(_requests("stepped"))
        while running.run_active:
            running.run_tick()
            now = running.run_clock_s
            phase = running.replicas[0].boot_phase(now)
            if phase is not None and phase != BOOT_PHASES[0]:
                break
        payload = json.loads(json.dumps(running.to_state()))
        fresh = _fleet("stepped")
        fresh.from_state(payload)
        # Phase identity is derived from ready_s, which round-trips:
        # the restored replica agrees at the snapshot instant.
        assert fresh.replicas[0].boot_phase(now) == phase


class TestAttestGrid:
    def test_grid_rows_match_direct_sweep(self, tmp_path):
        spec = attest_grid(kinds=("tdx",))
        runner = SweepRunner.create(tmp_path / "run", spec)
        rows = runner.run()
        direct = attest_tax_sweep(kinds=("tdx",))
        assert [rows[i] for i in sorted(rows)] == direct

    def test_grid_resumes_after_partial_run(self, tmp_path):
        spec = attest_grid(kinds=("tdx",))
        SweepRunner.create(tmp_path / "run", spec).run(max_points=1)
        journaled = read_journal(tmp_path / "run" / "results.jsonl")
        assert len(journaled) == 1
        # A reopened runner executes only the missing point.
        resumed = SweepRunner.open(tmp_path / "run").run()
        assert len(resumed) == len(spec.points)
        direct = attest_tax_sweep(kinds=("tdx",))
        assert [resumed[i] for i in sorted(resumed)] == direct
