"""Unit tests: snapshot schema, version negotiation, error taxonomy."""

import json

import pytest

from repro.state import (
    CURRENT_STATE_VERSION,
    StateError,
    StateIntegrityError,
    StateJournalError,
    StateSchemaError,
    StateValueError,
    StateVersionError,
    negotiate,
    validate_payload,
)
from repro.state.schema import (
    _MIGRATIONS,
    read_json,
    require,
    require_finite,
    write_json_atomic,
)


class TestErrorTaxonomy:
    def test_all_errors_are_state_and_value_errors(self):
        for err in (StateSchemaError, StateVersionError, StateValueError,
                    StateIntegrityError, StateJournalError):
            assert issubclass(err, StateError)
            assert issubclass(err, ValueError)

    def test_errors_are_distinguishable(self):
        with pytest.raises(StateVersionError):
            try:
                negotiate({"state_version": CURRENT_STATE_VERSION + 1})
            except StateSchemaError:  # pragma: no cover - wrong branch
                pytest.fail("version refusal raised the schema error")


class TestValidatePayload:
    def test_accepts_plain_json_data(self):
        validate_payload({"a": [1, 2.5, None, True, "x"], "b": {"c": ()}})

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_rejects_non_finite_with_path(self, bad):
        with pytest.raises(StateValueError, match=r"\$\.outer\[1\]"):
            validate_payload({"outer": [0.0, bad]})

    def test_rejects_non_json_types(self):
        with pytest.raises(StateSchemaError, match="set"):
            validate_payload({"a": {1, 2}})

    def test_rejects_non_string_keys(self):
        with pytest.raises(StateSchemaError, match="non-string key"):
            validate_payload({1: "x"})


class TestNegotiate:
    def _payload(self, version=CURRENT_STATE_VERSION):
        return {"state_version": version, "kind": "fleet_simulator",
                "state": {}}

    def test_current_version_passes_through(self):
        payload = self._payload()
        assert negotiate(dict(payload)) == payload

    def test_newer_version_refused_with_clear_message(self):
        with pytest.raises(StateVersionError, match="newer than this build"):
            negotiate(self._payload(CURRENT_STATE_VERSION + 3))

    def test_unmigratable_older_version_refused(self):
        with pytest.raises(StateVersionError, match="no migration"):
            negotiate(self._payload(0))

    def test_missing_or_bad_version_is_schema_error(self):
        with pytest.raises(StateSchemaError):
            negotiate({"kind": "fleet_simulator"})
        with pytest.raises(StateSchemaError):
            negotiate({"state_version": "1"})
        with pytest.raises(StateSchemaError):
            negotiate({"state_version": True})
        with pytest.raises(StateSchemaError):
            negotiate(["not", "a", "dict"])

    def test_same_version_hook_runs_on_every_restore(self):
        """The v1->v1 no-op migration is exercised, not just registered."""
        calls = []
        original = _MIGRATIONS[CURRENT_STATE_VERSION]

        def spy(payload):
            calls.append(payload["state_version"])
            return original(payload)

        _MIGRATIONS[CURRENT_STATE_VERSION] = spy
        try:
            negotiate(self._payload())
            negotiate(self._payload())
        finally:
            _MIGRATIONS[CURRENT_STATE_VERSION] = original
        assert calls == [CURRENT_STATE_VERSION, CURRENT_STATE_VERSION]

    def test_stuck_migration_is_refused(self):
        """A migration that does not advance the version is an error."""
        assert 0 not in _MIGRATIONS
        _MIGRATIONS[0] = lambda payload: dict(payload)  # never advances
        try:
            with pytest.raises(StateVersionError, match="did not advance"):
                negotiate(self._payload(0))
        finally:
            del _MIGRATIONS[0]

    def test_older_version_upgrades_through_chain(self):
        assert 0 not in _MIGRATIONS
        _MIGRATIONS[0] = lambda payload: dict(payload, state_version=1,
                                              upgraded=True)
        try:
            upgraded = negotiate(self._payload(0))
        finally:
            del _MIGRATIONS[0]
        assert upgraded["state_version"] == CURRENT_STATE_VERSION
        assert upgraded["upgraded"] is True


class TestRequire:
    def test_missing_key_names_path(self):
        with pytest.raises(StateSchemaError, match=r"\$\.spot"):
            require({}, "x", int, "$.spot")

    def test_int_satisfies_float_but_bool_never_numeric(self):
        assert require({"x": 3}, "x", float, "$") == 3.0
        with pytest.raises(StateSchemaError, match="bool"):
            require({"x": True}, "x", int, "$")

    def test_require_finite_bounds(self):
        with pytest.raises(StateValueError, match=">= 0"):
            require_finite({"x": -1.0}, "x", "$", minimum=0.0)
        assert require_finite({"x": None}, "x", "$", optional=True) is None


class TestAtomicJson:
    def test_roundtrip_and_no_tmp_left_behind(self, tmp_path):
        target = tmp_path / "snap.json"
        write_json_atomic(target, {"a": 1})
        assert read_json(target) == {"a": 1}
        assert list(tmp_path.iterdir()) == [target]

    def test_nan_refused_at_write_time(self, tmp_path):
        with pytest.raises(ValueError):
            write_json_atomic(tmp_path / "bad.json", {"a": float("nan")})
        assert not (tmp_path / "bad.json").exists()

    def test_unreadable_json_is_schema_error(self, tmp_path):
        bad = tmp_path / "torn.json"
        bad.write_text('{"a": 1')
        with pytest.raises(StateSchemaError, match="unreadable JSON"):
            read_json(bad)

    def test_overwrite_is_atomic_replacement(self, tmp_path):
        target = tmp_path / "snap.json"
        write_json_atomic(target, {"generation": 1})
        write_json_atomic(target, {"generation": 2})
        assert json.loads(target.read_text()) == {"generation": 2}
