"""Unit tests: grid specs, the write-ahead journal, and the sweep runner.

These tests use cheap registered point runners (no simulation) so the
journal/watchdog/quarantine mechanics are exercised in milliseconds;
the chaos-grid integration lives in ``test_kill_resume.py`` and the
``state.wal_resume`` audit check.
"""

import json
import time

import pytest

from repro.faults.resilience import RetryPolicy
from repro.state import (
    StateIntegrityError,
    StateJournalError,
    StateSchemaError,
    StateValueError,
)
from repro.state.points import point_runner
from repro.state.runner import (
    GridPoint,
    SweepRunner,
    SweepSpec,
    read_journal,
)

_CALLS = []


@point_runner("test_echo")
def _echo(params, context):
    _CALLS.append(params["tag"])
    return {"tag": params["tag"], "value": params.get("value", 0)}


@point_runner("test_fail_times")
def _fail_times(params, context):
    """Fail the first ``fails`` attempts, then succeed."""
    _CALLS.append(params["tag"])
    if _CALLS.count(params["tag"]) <= params["fails"]:
        raise RuntimeError("transient")
    return {"tag": params["tag"]}


@point_runner("test_sleep")
def _sleepy(params, context):
    time.sleep(params["sleep_s"])
    return {"tag": params["tag"]}


def _grid(*tags, runner="test_echo", **spec_kwargs):
    points = tuple(
        GridPoint(index, tag, runner, {"tag": tag}) for index, tag
        in enumerate(tags))
    return SweepSpec(points=points, **spec_kwargs)


@pytest.fixture(autouse=True)
def _reset_calls():
    del _CALLS[:]


class TestSpecValidation:
    def test_indices_must_be_contiguous(self):
        with pytest.raises(StateSchemaError, match="contiguous"):
            SweepSpec(points=(GridPoint(1, "a", "test_echo"),))

    def test_keys_must_be_unique(self):
        with pytest.raises(StateSchemaError, match="unique"):
            SweepSpec(points=(GridPoint(0, "a", "test_echo"),
                              GridPoint(1, "a", "test_echo")))

    def test_empty_grid_refused(self):
        with pytest.raises(StateSchemaError, match="at least one"):
            SweepSpec(points=())

    def test_nan_params_refused_early(self):
        point = GridPoint(0, "a", "test_echo", {"x": float("nan")})
        with pytest.raises(StateValueError, match=r"\$\.points"):
            SweepSpec(points=(point,))

    def test_bad_supervision_knobs_refused(self):
        with pytest.raises(StateValueError):
            _grid("a", checkpoint_every_s=-1.0)
        with pytest.raises(StateValueError):
            _grid("a", point_timeout_s=0.0)
        with pytest.raises(StateValueError):
            _grid("a", max_attempts=0)

    def test_spec_roundtrips_through_state(self):
        spec = _grid("a", "b", prune_field="done", checkpoint_every_s=2.0,
                     point_timeout_s=5.0, max_attempts=2, retry_seed=9)
        assert SweepSpec.from_state(
            json.loads(json.dumps(spec.to_state()))) == spec


class TestJournal:
    def test_torn_final_line_is_recoverable(self, tmp_path):
        wal = tmp_path / "results.jsonl"
        wal.write_text('{"index": 0}\n{"index": 1}\n{"index": 2, "ke')
        assert [r["index"] for r in read_journal(wal)] == [0, 1]

    def test_mid_file_corruption_raises(self, tmp_path):
        wal = tmp_path / "results.jsonl"
        wal.write_text('{"index": 0}\nnot json at all\n{"index": 2}\n')
        with pytest.raises(StateJournalError, match="line 2"):
            read_journal(wal)

    def test_non_object_line_raises(self, tmp_path):
        wal = tmp_path / "results.jsonl"
        wal.write_text('[1, 2]\n{"index": 1}\n')
        with pytest.raises(StateJournalError, match="not a JSON object"):
            read_journal(wal)

    def test_missing_journal_is_empty(self, tmp_path):
        assert read_journal(tmp_path / "absent.jsonl") == []

    def test_duplicate_and_unknown_rows_refused(self, tmp_path):
        runner = SweepRunner.create(tmp_path / "run", _grid("a"))
        runner.results_path.write_text(
            '{"index": 0, "key": "a", "row": {}}\n'
            '{"index": 0, "key": "a", "row": {}}\n')
        with pytest.raises(StateJournalError, match="duplicate"):
            runner.completed()
        runner.results_path.write_text(
            '{"index": 5, "key": "ghost", "row": {}}\n')
        with pytest.raises(StateJournalError, match="unknown point"):
            runner.completed()


class TestRunner:
    def test_run_journals_every_row_then_resumes_nothing(self, tmp_path):
        runner = SweepRunner.create(tmp_path / "run", _grid("a", "b", "c"))
        rows = runner.run()
        assert [rows[i]["tag"] for i in sorted(rows)] == ["a", "b", "c"]
        assert _CALLS == ["a", "b", "c"]
        reopened = SweepRunner.open(tmp_path / "run")
        assert reopened.spec == runner.spec
        assert reopened.pending() == []
        reopened.run()
        assert _CALLS == ["a", "b", "c"], "resume re-ran completed points"

    def test_max_points_interrupt_then_resume(self, tmp_path):
        runner = SweepRunner.create(tmp_path / "run", _grid("a", "b"))
        first = runner.run(max_points=1)
        assert sorted(first) == [0]
        merged = SweepRunner.open(tmp_path / "run").run()
        assert sorted(merged) == [0, 1]

    def test_on_row_streams_in_execution_order(self, tmp_path):
        seen = []
        runner = SweepRunner.create(tmp_path / "run", _grid("a", "b"))
        runner.run(on_row=lambda point, row: seen.append(point.key))
        assert seen == ["a", "b"]

    def test_create_refuses_mismatched_spec(self, tmp_path):
        SweepRunner.create(tmp_path / "run", _grid("a", "b"))
        with pytest.raises(StateIntegrityError, match="different sweep"):
            SweepRunner.create(tmp_path / "run", _grid("a", "z"))

    def test_open_refuses_non_run_directory(self, tmp_path):
        with pytest.raises(StateSchemaError, match="not a sweep run"):
            SweepRunner.open(tmp_path / "nowhere")

    def test_transient_failure_retries_with_seeded_backoff(self, tmp_path):
        spec = SweepSpec(points=(
            GridPoint(0, "flaky", "test_fail_times",
                      {"tag": "flaky", "fails": 1}),), max_attempts=3,
            retry_seed=4)
        sleeps = []
        rows = SweepRunner.create(tmp_path / "run", spec).run(
            sleep=sleeps.append)
        assert rows[0] == {"tag": "flaky"}
        assert sleeps == [RetryPolicy(timeout_s=1.0, max_attempts=3,
                                      seed=4).backoff_s(0, 1)]

    def test_exhausted_point_quarantined_not_fatal(self, tmp_path):
        spec = SweepSpec(points=(
            GridPoint(0, "doomed", "test_fail_times",
                      {"tag": "doomed", "fails": 99}),
            GridPoint(1, "fine", "test_echo", {"tag": "fine"}),
        ), max_attempts=2)
        runner = SweepRunner.create(tmp_path / "run", spec)
        rows = runner.run(sleep=lambda s: None)
        assert sorted(rows) == [1]
        entry = runner.quarantined()[0]
        assert entry["attempts"] == 2 and "RuntimeError" in entry["error"]
        # Quarantine is durable: a resumed run does not retry the point.
        del _CALLS[:]
        SweepRunner.open(tmp_path / "run").run(sleep=lambda s: None)
        assert _CALLS == []

    def test_unknown_runner_name_fails_with_roster(self, tmp_path):
        spec = SweepSpec(points=(GridPoint(0, "a", "no_such_runner"),),
                         max_attempts=1)
        runner = SweepRunner.create(tmp_path / "run", spec)
        runner.run(sleep=lambda s: None)
        assert "no_such_runner" in runner.quarantined()[0]["error"]

    def test_group_pruning_skips_later_points_across_resume(self, tmp_path):
        points = tuple(
            GridPoint(index, f"p{index}", "test_echo",
                      {"tag": f"p{index}", "value": int(index >= 1)},
                      group="g")
            for index in range(3))
        spec = SweepSpec(points=points, prune_field="value")
        runner = SweepRunner.create(tmp_path / "run", spec)
        rows = runner.run()
        # p0 does not satisfy the prune field, p1 does -> p2 skipped.
        assert sorted(rows) == [0, 1]
        assert SweepRunner.open(tmp_path / "run").pending() == []

    def test_watchdog_times_out_hung_point(self, tmp_path):
        spec = SweepSpec(points=(
            GridPoint(0, "hang", "test_sleep",
                      {"tag": "hang", "sleep_s": 30.0}),),
            point_timeout_s=0.2, max_attempts=1)
        runner = SweepRunner.create(tmp_path / "run", spec)
        started = time.perf_counter()
        rows = runner.run(sleep=lambda s: None)
        assert time.perf_counter() - started < 10.0
        assert rows == {}
        assert "TimeoutError" in runner.quarantined()[0]["error"]

    def test_watchdog_passes_healthy_rows_through(self, tmp_path):
        spec = SweepSpec(points=(
            GridPoint(0, "quick", "test_sleep",
                      {"tag": "quick", "sleep_s": 0.0}),),
            point_timeout_s=30.0, max_attempts=1)
        rows = SweepRunner.create(tmp_path / "run", spec).run()
        assert rows[0] == {"tag": "quick"}
