"""Property-based checkpoint/restore: round-trips hold everywhere.

The ``state.*`` audit checks pin fixed configurations; these properties
generate the configuration space — arbitrary payload data must survive
(or be refused by) validation, and a fleet frozen after *any* number of
ticks under *any* generated fault schedule must restore into a fresh
simulator that finishes bit-identically.  The default selection stays
small for the tier-1 budget; ``-m slow`` runs a deeper sweep.
"""

import json
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import RetryPolicy, mtbf_schedule
from repro.fleet import fixed_fleet, poisson_arrivals, replica_spec
from repro.state import StateError, validate_payload
from repro.state.checkpoint import restore, snapshot
from repro.state.runner import GridPoint, SweepSpec

SIM_SETTINGS = dict(deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

TDX = replica_spec("tdx", max_batch=16, kv_capacity_tokens=65536)


def json_payloads():
    """Strategy: arbitrary JSON-shaped data, finite and non-finite."""
    leaves = st.one_of(
        st.none(), st.booleans(), st.integers(-10**6, 10**6),
        st.floats(allow_nan=True, allow_infinity=True), st.text(max_size=8))
    return st.recursive(
        leaves,
        lambda inner: st.one_of(
            st.lists(inner, max_size=4),
            st.dictionaries(st.text(max_size=6), inner, max_size=4)),
        max_leaves=12)


def _has_non_finite(value):
    if isinstance(value, float):
        return not math.isfinite(value)
    if isinstance(value, dict):
        return any(_has_non_finite(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return any(_has_non_finite(v) for v in value)
    return False


@settings(max_examples=50, **SIM_SETTINGS)
@given(payload=json_payloads())
def test_validate_accepts_exactly_strict_json(payload):
    """validate_payload passes iff strict JSON serialization would."""
    if _has_non_finite(payload):
        with pytest.raises(StateError):
            validate_payload(payload)
    else:
        validate_payload(payload)
        assert json.loads(json.dumps(payload, allow_nan=False)) == payload


@settings(max_examples=25, **SIM_SETTINGS)
@given(params=st.dictionaries(
    st.text(min_size=1, max_size=6),
    st.one_of(st.integers(-100, 100), st.floats(-5, 5), st.text(max_size=6),
              st.none()),
    max_size=4),
    group=st.text(max_size=4), prune=st.booleans())
def test_sweep_spec_roundtrips_exactly(params, group, prune):
    """SweepSpec -> JSON -> SweepSpec is the identity."""
    spec = SweepSpec(
        points=(GridPoint(0, "only", "test_runner", params, group=group),),
        prune_field="flag" if prune else None)
    assert SweepSpec.from_state(json.loads(json.dumps(spec.to_state()))) \
        == spec


def _roundtrip_fleet(mtbf_s, ticks, seed, n_requests):
    def factory():
        faults = (mtbf_schedule([0, 1], mtbf_s=mtbf_s, horizon_s=15.0,
                                seed=seed) if mtbf_s is not None else None)
        return fixed_fleet(TDX, 2, faults=faults,
                           retry_policy=RetryPolicy(seed=seed))

    stream = poisson_arrivals(n_requests, rate_per_s=4.0, mean_prompt=64,
                              mean_output=16, seed=seed)
    baseline = factory().run(stream)
    running = factory()
    running.begin_run(stream)
    for _ in range(ticks):
        if not running.run_active:
            break
        running.run_tick()
    payload = json.loads(json.dumps(snapshot(running)))
    fresh = factory()
    restore(fresh, payload)
    assert snapshot(fresh) == payload, "restore -> snapshot not idempotent"
    while fresh.run_active:
        fresh.run_tick()
    assert fresh.finish_run().to_dict() == baseline.to_dict()


@settings(max_examples=4, **SIM_SETTINGS)
@given(mtbf_s=st.one_of(st.none(), st.floats(4.0, 12.0)),
       ticks=st.integers(0, 12), seed=st.integers(0, 1000))
def test_snapshot_any_tick_restores_bit_identically(mtbf_s, ticks, seed):
    """Freezing after any tick count resumes to the baseline report."""
    _roundtrip_fleet(mtbf_s, ticks, seed, n_requests=8)


@pytest.mark.slow
@settings(max_examples=40, **SIM_SETTINGS)
@given(mtbf_s=st.one_of(st.none(), st.floats(2.0, 14.0)),
       ticks=st.integers(0, 40), seed=st.integers(0, 100_000))
def test_snapshot_any_tick_restores_bit_identically_deep(mtbf_s, ticks,
                                                         seed):
    """Deep variant: more ticks, wider seeds, larger streams."""
    _roundtrip_fleet(mtbf_s, ticks, seed, n_requests=14)
