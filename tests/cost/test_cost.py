"""Price catalog and $/Mtok computations."""

import pytest

from repro.core.experiment import cpu_deployment, gpu_deployment
from repro.cost.efficiency import (
    best_cpu_point,
    cost_overhead,
    cost_per_million_tokens,
    cpu_cost_point,
    gpu_cost_point,
    optimal_core_count,
)
from repro.cost.pricing import GCP_SPOT_US_EAST1, PAPER_MEMORY_GB, PriceCatalog
from repro.engine.placement import Workload
from repro.engine.simulator import simulate_generation
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16


class TestCatalog:
    def test_instance_price_composition(self):
        price = GCP_SPOT_US_EAST1.cpu_instance_hr(16, 128.0)
        expected = 16 * GCP_SPOT_US_EAST1.vcpu_hr + 128 * GCP_SPOT_US_EAST1.gb_hr
        assert price == pytest.approx(expected)

    def test_spr_discount(self):
        full = GCP_SPOT_US_EAST1.cpu_instance_hr(16, 128.0)
        spr = GCP_SPOT_US_EAST1.cpu_instance_hr(16, 128.0, spr=True)
        assert spr == pytest.approx(full * GCP_SPOT_US_EAST1.spr_discount)

    def test_memory_dominates_small_instances(self):
        """§V-D2: memory cost is fixed and dominates at low core counts."""
        price_8c = GCP_SPOT_US_EAST1.cpu_instance_hr(8, PAPER_MEMORY_GB)
        memory_part = PAPER_MEMORY_GB * GCP_SPOT_US_EAST1.gb_hr
        assert memory_part > price_8c / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            PriceCatalog(0.0, 0.001, 1.0, 1.0)
        with pytest.raises(ValueError):
            GCP_SPOT_US_EAST1.cpu_instance_hr(0, 128.0)


class TestCostPerMtok:
    def test_formula(self):
        # 1000 tok/s at $3.6/hr -> $1 per million tokens.
        assert cost_per_million_tokens(1000.0, 3.6) == pytest.approx(1.0)

    def test_throughput_must_be_positive(self):
        with pytest.raises(ValueError):
            cost_per_million_tokens(0.0, 1.0)


class TestCostPoints:
    @pytest.fixture(scope="class")
    def tdx_result(self):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=4,
                            input_tokens=128, output_tokens=32)
        return simulate_generation(workload, cpu_deployment(
            "tdx", sockets_used=1, cores_per_socket_used=16))

    def test_cpu_point(self, tdx_result):
        point = cpu_cost_point(tdx_result, vcpus=16,
                               catalog=GCP_SPOT_US_EAST1)
        assert point.vcpus == 16
        assert point.usd_per_mtok > 0
        assert point.label == "tdx-16c"

    def test_gpu_point_confidential_premium(self):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=4,
                            input_tokens=128, output_tokens=32)
        result = simulate_generation(workload, gpu_deployment())
        confidential = gpu_cost_point(result, GCP_SPOT_US_EAST1,
                                      confidential=True)
        raw = gpu_cost_point(result, GCP_SPOT_US_EAST1, confidential=False)
        assert confidential.price_hr > raw.price_hr

    def test_cost_overhead_sign(self, tdx_result):
        cheap = cpu_cost_point(tdx_result, vcpus=8, catalog=GCP_SPOT_US_EAST1)
        pricey = cpu_cost_point(tdx_result, vcpus=56,
                                catalog=GCP_SPOT_US_EAST1)
        assert cost_overhead(pricey, cheap) > 0

    def test_best_point_selection(self, tdx_result):
        points = [cpu_cost_point(tdx_result, vcpus=v,
                                 catalog=GCP_SPOT_US_EAST1)
                  for v in (8, 16, 56)]
        best = best_cpu_point(points)
        assert best.usd_per_mtok == min(p.usd_per_mtok for p in points)
        assert optimal_core_count(points) == best.vcpus

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            best_cpu_point([])
