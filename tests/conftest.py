"""Shared fixtures: small, fast workloads and standard deployments."""

import pytest

from repro.core.experiment import cpu_deployment, gpu_deployment
from repro.engine.placement import Workload
from repro.llm.config import LLAMA2_7B, tiny_llama
from repro.llm.datatypes import BFLOAT16


@pytest.fixture
def small_workload():
    """A Llama2-7B workload small enough for sub-second simulation."""
    return Workload(LLAMA2_7B, BFLOAT16, batch_size=1, input_tokens=128,
                    output_tokens=16)


@pytest.fixture
def tiny_model():
    """A 2-layer toy architecture for functional (numpy) tests."""
    return tiny_llama()


@pytest.fixture
def baremetal_1s():
    return cpu_deployment("baremetal", sockets_used=1)


@pytest.fixture
def tdx_1s():
    return cpu_deployment("tdx", sockets_used=1)


@pytest.fixture
def sgx_1s():
    return cpu_deployment("sgx", sockets_used=1)


@pytest.fixture
def vm_1s():
    return cpu_deployment("vm", sockets_used=1)


@pytest.fixture
def gpu_raw():
    return gpu_deployment(confidential=False)


@pytest.fixture
def cgpu():
    return gpu_deployment(confidential=True)
