"""Synthetic prompts and request streams."""

import pytest

from repro.llm.tokenizer import HashTokenizer
from repro.workloads.prompts import (
    request_stream,
    synthetic_prompt,
    verify_prompt_length,
)


class TestSyntheticPrompt:
    def test_exact_token_count(self):
        prompt = synthetic_prompt(137)
        assert HashTokenizer().count(prompt) == 137

    def test_verify_helper(self):
        prompt = synthetic_prompt(64, domain="finance")
        assert verify_prompt_length(prompt, 64)
        assert not verify_prompt_length(prompt, 65)

    def test_deterministic(self):
        assert synthetic_prompt(32, seed=3) == synthetic_prompt(32, seed=3)

    def test_domains_differ(self):
        health = synthetic_prompt(32, domain="healthcare", seed=1)
        legal = synthetic_prompt(32, domain="legal", seed=1)
        assert health != legal

    def test_unknown_domain(self):
        with pytest.raises(KeyError):
            synthetic_prompt(8, domain="astrology")

    def test_nonpositive_length(self):
        with pytest.raises(ValueError):
            synthetic_prompt(0)


class TestRequestStream:
    def test_count(self):
        assert len(request_stream(25)) == 25

    def test_deterministic(self):
        a = request_stream(10, seed=9)
        b = request_stream(10, seed=9)
        assert a == b

    def test_lengths_clamped(self):
        requests = request_stream(200, mean_prompt=256, mean_output=64)
        assert all(16 <= r.prompt_tokens <= 1024 for r in requests)
        assert all(16 <= r.output_tokens <= 256 for r in requests)

    def test_mean_roughly_respected(self):
        requests = request_stream(500, mean_prompt=512, seed=0)
        mean = sum(r.prompt_tokens for r in requests) / len(requests)
        assert 300 < mean < 900

    def test_domains_assigned(self):
        domains = {r.domain for r in request_stream(100)}
        assert domains <= {"healthcare", "finance", "legal"}
        assert len(domains) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            request_stream(0)
        with pytest.raises(ValueError):
            request_stream(5, mean_prompt=4)
