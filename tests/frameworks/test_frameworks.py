"""Framework models and the Fig. 3 ordering."""

import pytest

from repro.core.experiment import cpu_deployment
from repro.engine.placement import Workload
from repro.engine.simulator import simulate_generation
from repro.frameworks.base import (
    HUGGINGFACE,
    IPEX,
    LLAMACPP,
    VLLM_CPU,
    VLLM_GPU,
    cpu_frameworks,
    framework_by_name,
)
from repro.hardware.cpu import EMR1
from repro.hardware.engines import Engine
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16, FLOAT32, INT8


class TestRegistry:
    def test_lookup(self):
        assert framework_by_name("ipex") is IPEX
        with pytest.raises(KeyError):
            framework_by_name("tgi")

    def test_cpu_frameworks_are_the_fig3_contenders(self):
        names = {fw.name for fw in cpu_frameworks()}
        assert names == {"ipex", "vllm-cpu", "hf", "llamacpp"}

    def test_only_ipex_drives_amx(self):
        assert IPEX.amx_capable
        assert not any(fw.amx_capable for fw in (VLLM_CPU, HUGGINGFACE,
                                                 LLAMACPP))

    def test_int8_support(self):
        assert IPEX.supports(INT8)
        assert not VLLM_CPU.supports(INT8)
        assert not HUGGINGFACE.supports(INT8)

    def test_llamacpp_mixed_quantization(self):
        assert LLAMACPP.weight_bytes_per_param is not None
        assert LLAMACPP.weight_bytes_per_param < 1.0

    def test_mfu_unknown_engine_raises(self):
        with pytest.raises(KeyError):
            HUGGINGFACE.mfu(Engine.AMX)

    def test_ipex_amx_mfu_available(self):
        assert IPEX.mfu(Engine.AMX) > 0
        assert VLLM_GPU.mfu(Engine.CUDA_TENSOR) > 0


class TestFig3Ordering:
    """§III-C2: IPEX fastest; vLLM ~1.5x slower; HF ~2x slower;
    f32 slower than bf16 for each stack."""

    @pytest.fixture(scope="class")
    def runtimes(self):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=1,
                            input_tokens=1024, output_tokens=32)
        times = {}
        cases = (("ipex", "ipex", BFLOAT16),
                 ("vllm-cpu", "vllm-cpu", BFLOAT16),
                 ("hf", "hf", BFLOAT16),
                 ("llamacpp", "llamacpp", BFLOAT16),
                 ("hf-f32", "hf", FLOAT32),
                 ("vllm-f32", "vllm-cpu", FLOAT32))
        for label, fw, dtype in cases:
            result = simulate_generation(
                workload.with_(dtype=dtype),
                cpu_deployment("baremetal", cpu=EMR1, framework=fw,
                               sockets_used=1))
            times[label] = result.total_time_s
        return times

    def test_ipex_fastest(self, runtimes):
        others = [value for key, value in runtimes.items() if key != "ipex"]
        assert runtimes["ipex"] < min(others)

    def test_vllm_roughly_1_5x_slower(self, runtimes):
        ratio = runtimes["vllm-cpu"] / runtimes["ipex"]
        assert 1.2 < ratio < 3.0

    def test_hf_roughly_2x_slower(self, runtimes):
        # The short 32-token decode over-weights prefill, where the MFU
        # gap is widest; the full 128-token run lands near the paper's 2x.
        ratio = runtimes["hf"] / runtimes["ipex"]
        assert 1.7 < ratio < 4.5

    def test_f32_slower_than_bf16(self, runtimes):
        assert runtimes["hf-f32"] > runtimes["hf"]
        assert runtimes["vllm-f32"] > runtimes["vllm-cpu"]
