"""Functional cache simulator, validated against the analytical model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memsim.cache import CacheModel
from repro.memsim.cachesim import SetAssociativeCache, measure_cyclic_scan

KB = 1024


class TestCacheBasics:
    def test_hit_after_fill(self):
        cache = SetAssociativeCache(capacity_bytes=16 * KB)
        cache.access(0)
        assert cache.access(0)
        assert cache.access(32)  # same line

    def test_line_granularity(self):
        cache = SetAssociativeCache(capacity_bytes=16 * KB, line_bytes=64)
        cache.access(0)
        assert not cache.access(64)  # next line misses

    def test_capacity(self):
        cache = SetAssociativeCache(capacity_bytes=16 * KB, line_bytes=64,
                                    ways=4)
        assert cache.capacity_bytes == 16 * KB

    def test_eviction_when_full(self):
        cache = SetAssociativeCache(capacity_bytes=4 * KB, line_bytes=64,
                                    ways=64)  # fully associative, 64 lines
        for line in range(65):
            cache.access(line * 64)
        cache.reset_stats()
        assert not cache.access(0)  # line 0 was evicted

    def test_dram_bytes_counts_misses(self):
        cache = SetAssociativeCache(capacity_bytes=16 * KB, line_bytes=64)
        cache.stream(0, 1024)
        assert cache.dram_bytes == 1024

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=1000, line_bytes=64, ways=4)
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=0)


class TestAgainstAnalyticalModel:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=1, max_value=24))
    def test_fitting_sets_hit_fully(self, ws_kb):
        """Working sets within capacity: both functional and analytical
        models agree on ~zero DRAM traffic."""
        cache = SetAssociativeCache(capacity_bytes=32 * KB, line_bytes=64,
                                    ways=512)  # fully associative
        result = measure_cyclic_scan(cache, ws_kb * KB)
        model = CacheModel(llc_bytes=32 * KB, residency_share=1.0)
        assert result.measured_dram_fraction == 0.0
        assert model.dram_fraction(ws_kb * KB) == 0.0

    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=40, max_value=256))
    def test_analytical_lower_bounds_lru_thrash(self, ws_kb):
        """Oversized cyclic scans: strict LRU thrashes to ~100% misses;
        the analytical (random-replacement) fraction is a lower bound —
        the same relationship as the TLB pair of models."""
        cache = SetAssociativeCache(capacity_bytes=32 * KB, line_bytes=64,
                                    ways=512)
        result = measure_cyclic_scan(cache, ws_kb * KB)
        model = CacheModel(llc_bytes=32 * KB, residency_share=1.0)
        analytical = model.dram_fraction(ws_kb * KB)
        assert result.measured_dram_fraction >= analytical - 1e-9
        assert result.measured_dram_fraction == pytest.approx(1.0)

    def test_set_conflicts_can_miss_below_capacity(self):
        """A strided pattern mapping to one set misses despite a tiny
        footprint — why the analytical model keeps a residency share."""
        cache = SetAssociativeCache(capacity_bytes=32 * KB, line_bytes=64,
                                    ways=2)
        set_stride = cache.num_sets * cache.line_bytes
        for repeat in range(3):
            for way in range(4):  # 4 lines into a 2-way set
                cache.access(way * set_stride)
        assert cache.miss_rate > 0.5
