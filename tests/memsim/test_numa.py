"""NUMA placement: analytical fractions and the functional allocator."""

import pytest

from repro.hardware.interconnect import UPI_EMR
from repro.memsim.numa import (
    NumaAllocator,
    NumaPolicy,
    effective_bandwidth,
    remote_fraction,
    sub_numa_misplacement,
)


class TestRemoteFraction:
    def test_single_socket_is_local(self):
        for policy in NumaPolicy:
            assert remote_fraction(policy, 1) == 0.0

    def test_two_socket_ordering(self):
        """Bound < TDX-default < interleaved: the Fig. 5 ordering."""
        bound = remote_fraction(NumaPolicy.BOUND, 2)
        tdx = remote_fraction(NumaPolicy.TDX_DEFAULT, 2)
        interleaved = remote_fraction(NumaPolicy.INTERLEAVED, 2)
        assert bound < tdx < interleaved

    def test_invalid_sockets(self):
        with pytest.raises(ValueError):
            remote_fraction(NumaPolicy.BOUND, 0)


class TestSubNuma:
    def test_disabled_means_no_penalty(self):
        assert sub_numa_misplacement(1, tee=True) == 0.0

    def test_non_tee_unaffected(self):
        """SNC only hurts TEEs (their drivers ignore the sub-domains)."""
        assert sub_numa_misplacement(2, tee=False) == 0.0

    def test_tee_penalty_grows_with_clusters(self):
        assert (sub_numa_misplacement(2, tee=True)
                < sub_numa_misplacement(4, tee=True))


class TestEffectiveBandwidth:
    def test_all_local_is_identity(self):
        assert effective_bandwidth(400e9, UPI_EMR, 0.0) == pytest.approx(400e9)

    def test_remote_traffic_lowers_bandwidth(self):
        local = effective_bandwidth(400e9, UPI_EMR, 0.0)
        mixed = effective_bandwidth(400e9, UPI_EMR, 0.3)
        assert mixed < local

    def test_upi_crypto_derate_compounds(self):
        plain = effective_bandwidth(400e9, UPI_EMR, 0.5)
        encrypted = effective_bandwidth(400e9, UPI_EMR, 0.5,
                                        upi_crypto_derate=0.10)
        assert encrypted < plain

    def test_cluster_penalty(self):
        clean = effective_bandwidth(400e9, UPI_EMR, 0.0)
        misplaced = effective_bandwidth(400e9, UPI_EMR, 0.0,
                                        cluster_penalty=0.5)
        assert misplaced < clean

    def test_all_remote_is_upi_bound(self):
        bw = effective_bandwidth(400e9, UPI_EMR, 1.0)
        assert bw == pytest.approx(UPI_EMR.bandwidth_bytes_s)

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_bandwidth(1e9, UPI_EMR, 1.5)
        with pytest.raises(ValueError):
            effective_bandwidth(1e9, UPI_EMR, 0.5, upi_crypto_derate=1.0)


class TestAllocator:
    def test_bound_stays_on_node(self):
        alloc = NumaAllocator([100, 100])
        pages = alloc.allocate(50, NumaPolicy.BOUND, preferred_node=1)
        assert all(alloc.page_home(p) == 1 for p in pages)

    def test_bound_overflow_raises(self):
        alloc = NumaAllocator([10, 10])
        with pytest.raises(MemoryError):
            alloc.allocate(11, NumaPolicy.BOUND, preferred_node=0)

    def test_interleaved_stripes(self):
        alloc = NumaAllocator([100, 100])
        pages = alloc.allocate(10, NumaPolicy.INTERLEAVED)
        homes = [alloc.page_home(p) for p in pages]
        assert homes == [0, 1] * 5

    def test_single_node_spills_when_full(self):
        alloc = NumaAllocator([5, 100])
        pages = alloc.allocate(10, NumaPolicy.SINGLE_NODE, preferred_node=0)
        homes = [alloc.page_home(p) for p in pages]
        assert homes[:5] == [0] * 5
        assert all(h == 1 for h in homes[5:])

    def test_measured_remote_fraction_interleaved(self):
        """A thread on either node scanning interleaved memory sees 50%
        remote — the analytical table's INTERLEAVED entry."""
        alloc = NumaAllocator([1000, 1000])
        pages = alloc.allocate(1000, NumaPolicy.INTERLEAVED)
        assert alloc.measured_remote_fraction(pages, [0]) == pytest.approx(0.5)
        assert alloc.measured_remote_fraction(pages, [1]) == pytest.approx(0.5)

    def test_measured_remote_fraction_bound_local(self):
        alloc = NumaAllocator([1000, 1000])
        pages = alloc.allocate(500, NumaPolicy.BOUND, preferred_node=0)
        assert alloc.measured_remote_fraction(pages, [0]) == 0.0

    def test_single_node_remote_for_far_socket(self):
        """SGX's unified node: the second socket's threads are 100%
        remote, averaging ~50% across both — the table's 0.5."""
        alloc = NumaAllocator([1000, 1000])
        pages = alloc.allocate(400, NumaPolicy.SINGLE_NODE, preferred_node=0)
        assert alloc.measured_remote_fraction(pages, [1]) == 1.0
        assert alloc.measured_remote_fraction(pages, [0, 1]) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            NumaAllocator([])
        alloc = NumaAllocator([4])
        with pytest.raises(ValueError):
            alloc.allocate(1, NumaPolicy.BOUND, preferred_node=5)
        with pytest.raises(ValueError):
            alloc.measured_remote_fraction([], [0])
