"""LLC working-set model and hugepage policies."""

import pytest

from repro.memsim.cache import CacheModel
from repro.memsim.pages import (
    GB,
    MB,
    PAGE_1G,
    PAGE_2M,
    PAGE_4K,
    HugepagePolicy,
    effective_policy,
)


class TestCacheModel:
    def test_fitting_set_never_hits_dram(self):
        cache = CacheModel(llc_bytes=100 * MB)
        assert cache.dram_fraction(10 * MB) == 0.0

    def test_oversized_set_leaks(self):
        cache = CacheModel(llc_bytes=100 * MB, residency_share=1.0)
        assert cache.dram_fraction(200 * MB) == pytest.approx(0.5)

    def test_residency_share_reduces_capacity(self):
        generous = CacheModel(llc_bytes=100 * MB, residency_share=1.0)
        contended = CacheModel(llc_bytes=100 * MB, residency_share=0.5)
        ws = 80 * MB
        assert contended.dram_fraction(ws) > generous.dram_fraction(ws)

    def test_dram_bytes(self):
        cache = CacheModel(llc_bytes=100 * MB, residency_share=1.0)
        assert cache.dram_bytes(1000.0, 200 * MB) == pytest.approx(500.0)

    def test_monotone_in_working_set(self):
        cache = CacheModel(llc_bytes=64 * MB)
        fractions = [cache.dram_fraction(ws * MB) for ws in (1, 50, 100, 400)]
        assert fractions == sorted(fractions)

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheModel(llc_bytes=-1)
        with pytest.raises(ValueError):
            CacheModel(llc_bytes=1, residency_share=0.0)
        with pytest.raises(ValueError):
            CacheModel(llc_bytes=1).dram_fraction(-1)


class TestHugepagePolicies:
    def test_page_sizes(self):
        assert HugepagePolicy.BASE_4K.page_bytes == PAGE_4K
        assert HugepagePolicy.TRANSPARENT_2M.page_bytes == PAGE_2M
        assert HugepagePolicy.RESERVED_1G.page_bytes == PAGE_1G

    def test_constants(self):
        assert PAGE_1G == GB == 1024 * MB

    def test_tdx_downgrades_reserved_1g(self):
        """Insight 7: TDX silently uses THP instead of reserved pages."""
        resolved = effective_policy(HugepagePolicy.RESERVED_1G, tdx=True)
        assert resolved is HugepagePolicy.TRANSPARENT_2M

    def test_non_tdx_honours_request(self):
        resolved = effective_policy(HugepagePolicy.RESERVED_1G, tdx=False)
        assert resolved is HugepagePolicy.RESERVED_1G

    def test_tdx_leaves_thp_alone(self):
        resolved = effective_policy(HugepagePolicy.TRANSPARENT_2M, tdx=True)
        assert resolved is HugepagePolicy.TRANSPARENT_2M
