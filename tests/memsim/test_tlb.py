"""TLB: functional simulator, analytical model, and their agreement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memsim.pages import PAGE_2M, PAGE_4K
from repro.memsim.tlb import (
    SetAssociativeTlb,
    WalkModel,
    streaming_miss_rate,
    translation_time,
)


class TestFunctionalTlb:
    def test_repeat_access_hits(self):
        tlb = SetAssociativeTlb(entries=16, ways=4, page_bytes=PAGE_4K)
        tlb.access(0)
        assert tlb.access(64)  # same page
        assert tlb.miss_rate == 0.5

    def test_capacity_eviction(self):
        tlb = SetAssociativeTlb(entries=4, ways=4, page_bytes=PAGE_4K)
        for page in range(5):
            tlb.access(page * PAGE_4K)
        assert not tlb.access(0)  # page 0 was LRU-evicted

    def test_lru_within_set(self):
        tlb = SetAssociativeTlb(entries=2, ways=2, page_bytes=PAGE_4K)
        tlb.access(0 * PAGE_4K)
        tlb.access(1 * PAGE_4K)
        tlb.access(0 * PAGE_4K)          # refresh page 0
        tlb.access(2 * PAGE_4K)          # evicts page 1, not 0
        tlb.reset_stats()
        assert tlb.access(0)
        assert not tlb.access(1 * PAGE_4K)

    def test_access_range_strides(self):
        tlb = SetAssociativeTlb(entries=64, ways=4, page_bytes=PAGE_4K)
        tlb.access_range(0, 8 * PAGE_4K)
        assert tlb.misses == 8  # one per page, rest hit

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeTlb(entries=5, ways=2, page_bytes=PAGE_4K)
        with pytest.raises(ValueError):
            SetAssociativeTlb(entries=4, ways=2, page_bytes=3000)

    def test_reset_stats(self):
        tlb = SetAssociativeTlb(entries=4, ways=4, page_bytes=PAGE_4K)
        tlb.access(0)
        tlb.reset_stats()
        assert tlb.miss_rate == 0.0


class TestStreamingModel:
    def test_fits_means_no_misses(self):
        assert streaming_miss_rate(1e6, PAGE_4K, tlb_entries=2048) == 0.0

    def test_thrash_approaches_one(self):
        rate = streaming_miss_rate(1e12, PAGE_4K, tlb_entries=16)
        assert rate > 0.99

    def test_boundary(self):
        reach = 100 * PAGE_4K
        assert streaming_miss_rate(reach, PAGE_4K, 100) == 0.0
        assert streaming_miss_rate(reach * 2, PAGE_4K, 100) == pytest.approx(0.5)

    def test_hugepages_extend_reach(self):
        ws = 10 * 2**30
        assert (streaming_miss_rate(ws, PAGE_2M, 2048)
                < streaming_miss_rate(ws, PAGE_4K, 2048))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=512))
    def test_lower_bounds_lru_simulator(self, pages):
        """The random-replacement closed form never exceeds what the
        strict-LRU simulator measures on a cyclic scan, and matches it
        exactly when the set fits."""
        entries = 64
        tlb = SetAssociativeTlb(entries=entries, ways=entries,
                                page_bytes=PAGE_4K)
        # Warm up with two full passes, measure the third.
        for _ in range(2):
            for page in range(pages):
                tlb.access(page * PAGE_4K)
        tlb.reset_stats()
        for page in range(pages):
            tlb.access(page * PAGE_4K)
        expected = streaming_miss_rate(pages * PAGE_4K, PAGE_4K, entries)
        assert tlb.miss_rate >= expected - 1e-12
        if pages <= entries:
            assert tlb.miss_rate == expected == 0.0


class TestTranslationTime:
    def test_zero_when_fitting(self):
        walk = WalkModel(native_walk_s=50e-9)
        assert translation_time(1e9, PAGE_4K, 0.0, walk) == 0.0

    def test_nested_walks_cost_more(self):
        native = WalkModel(native_walk_s=50e-9)
        nested = WalkModel(native_walk_s=50e-9, nested_multiplier=2.5)
        base = translation_time(1e9, PAGE_4K, 0.5, native)
        assert translation_time(1e9, PAGE_4K, 0.5, nested) == pytest.approx(
            2.5 * base)

    def test_page_size_divides_touches(self):
        walk = WalkModel(native_walk_s=50e-9)
        small = translation_time(1e9, PAGE_4K, 1.0, walk)
        large = translation_time(1e9, PAGE_2M, 1.0, walk)
        assert small == pytest.approx(512 * large)

    def test_invalid_miss_rate(self):
        with pytest.raises(ValueError):
            translation_time(1.0, PAGE_4K, 1.5, WalkModel(1e-9))
