"""SGX EPC pager: functional LRU and analytical agreement."""

import pytest

from repro.memsim.epc import (
    EPC_FAULT_S,
    EpcPager,
    paging_fraction,
    paging_overhead_s,
)
from repro.memsim.pages import MB, PAGE_4K


class TestEpcPager:
    def test_first_touch_faults(self):
        pager = EpcPager(epc_bytes=16 * PAGE_4K)
        assert pager.touch(0)
        assert not pager.touch(0)

    def test_capacity_never_exceeded(self):
        pager = EpcPager(epc_bytes=4 * PAGE_4K)
        for page in range(20):
            pager.touch(page)
        assert pager.resident_pages <= 4

    def test_evictions_counted(self):
        pager = EpcPager(epc_bytes=2 * PAGE_4K)
        for page in range(5):
            pager.touch(page)
        assert pager.evictions == 3

    def test_touch_range_spans_pages(self):
        pager = EpcPager(epc_bytes=MB)
        faults = pager.touch_range(0, 3 * PAGE_4K)
        assert faults == 3

    def test_touch_range_partial_page(self):
        pager = EpcPager(epc_bytes=MB)
        assert pager.touch_range(100, 10) == 1

    def test_cyclic_thrash_matches_analytical(self):
        """A cyclic scan larger than the EPC defeats LRU entirely."""
        capacity_pages = 64
        pager = EpcPager(epc_bytes=capacity_pages * PAGE_4K)
        scan_pages = 96
        for _ in range(2):  # warmup
            for page in range(scan_pages):
                pager.touch(page)
        pager.faults = pager.accesses = 0
        for page in range(scan_pages):
            pager.touch(page)
        assert pager.fault_rate == pytest.approx(1.0)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            EpcPager(epc_bytes=0)


class TestAnalytical:
    def test_fraction_zero_when_fits(self):
        assert paging_fraction(1e9, 2e9) == 0.0

    def test_fraction_excess(self):
        assert paging_fraction(2e9, 1e9) == pytest.approx(0.5)

    def test_overhead_scales_with_traffic(self):
        one = paging_overhead_s(1e9, 2e9, 1e9)
        two = paging_overhead_s(2e9, 2e9, 1e9)
        assert two == pytest.approx(2 * one)

    def test_overhead_uses_fault_cost(self):
        overhead = paging_overhead_s(PAGE_4K, 2e9, 1e9)
        assert overhead == pytest.approx(0.5 * EPC_FAULT_S)

    def test_llama7b_fits_emr_epc(self):
        """The paper uses the largest possible EPC so 7B never pages."""
        from repro.hardware.cpu import EMR1
        from repro.llm.config import LLAMA2_7B
        weights = LLAMA2_7B.weight_bytes(2.0)
        assert paging_fraction(weights, EMR1.sgx_epc_per_socket) == 0.0
