"""Property tests: event-driven columnar fleet core vs stepped engine.

The hand-picked regimes live in ``repro.validate.event``; here
hypothesis draws *random* fleet configurations — replica kind and
count, stream shape, faults on or off — and asserts the two engines
produce equal reports, and that freezing an event run mid-flight and
restoring it changes nothing.  Equality is exact: the event core is a
reimplementation, not an approximation.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.faults import RetryPolicy, mtbf_schedule
from repro.fleet import (
    RequestTable,
    fixed_fleet,
    poisson_arrivals,
    poisson_table,
    replica_spec,
)

configs = st.fixed_dictionaries({
    "kind": st.sampled_from(["tdx", "baremetal", "cgpu"]),
    "replicas": st.integers(1, 3),
    "count": st.integers(5, 30),
    "rate": st.sampled_from([2.0, 4.0, 8.0]),
    "seed": st.integers(0, 50),
    "faulted": st.booleans(),
})


def build(config, engine):
    spec = replica_spec(config["kind"], max_batch=8,
                        kv_capacity_tokens=16384)
    kwargs = {}
    if config["faulted"]:
        kwargs = dict(
            faults=mtbf_schedule(list(range(config["replicas"])),
                                 mtbf_s=8.0, horizon_s=20.0,
                                 seed=config["seed"]),
            retry_policy=RetryPolicy(timeout_s=30.0, max_attempts=4,
                                     seed=config["seed"]))
    return fixed_fleet(spec, config["replicas"], engine=engine, **kwargs)


def stream_pair(config):
    kwargs = dict(count=config["count"], rate_per_s=config["rate"],
                  mean_prompt=96, mean_output=24, seed=config["seed"])
    return poisson_arrivals(**kwargs), poisson_table(**kwargs)


def assert_reports_equal(a, b):
    assert a.to_dict() == b.to_dict()
    for x, y in zip(a.outcomes, b.outcomes):
        assert x.request.request_id == y.request.request_id
        assert x.first_token_s == y.first_token_s  # exact, not approx
        assert x.finish_s == y.finish_s
        assert x.preemptions == y.preemptions


class TestEngineEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(config=configs)
    def test_event_report_equals_stepped(self, config):
        requests, table = stream_pair(config)
        stepped = build(config, "stepped").run(requests)
        event = build(config, "event").run(table)
        assert_reports_equal(stepped, event)

    @settings(max_examples=8, deadline=None)
    @given(config=configs)
    def test_event_engine_accepts_object_streams(self, config):
        """begin_run converts plain request lists to a table itself."""
        requests, table = stream_pair(config)
        from_list = build(config, "event").run(list(requests))
        from_table = build(config, "event").run(table)
        assert_reports_equal(from_list, from_table)


class TestEventResume:
    @settings(max_examples=10, deadline=None)
    @given(config=configs, pause_ticks=st.integers(1, 60))
    def test_snapshot_restore_finish_is_invisible(self, config, pause_ticks):
        _, table = stream_pair(config)
        baseline = build(config, "event").run(table)

        running = build(config, "event")
        running.begin_run(table)
        for _ in range(pause_ticks):
            if not running.run_active:
                break
            running.run_tick()
        payload = json.loads(json.dumps(running.to_state()))
        fresh = build(config, "event")
        fresh.from_state(payload)
        while fresh.run_active:
            fresh.run_tick()
        assert_reports_equal(baseline, fresh.finish_run())
        # The observed simulator finishes identically too.
        while running.run_active:
            running.run_tick()
        assert_reports_equal(baseline, running.finish_run())

    def test_table_round_trips_through_state(self):
        table = poisson_table(25, rate_per_s=4.0, seed=5)
        restored = RequestTable.from_state(
            json.loads(json.dumps(table.to_state())))
        assert len(restored) == len(table)
        for i in range(len(table)):
            assert table.request(i) == restored.request(i)
