"""RetryQueue contract: the fleet's (due, id)-ordered resubmission heap.

The helper replaced three open-coded ``heapq`` sites in the cluster;
its ordering is load-bearing for bit-identical fleet reports, so these
tests pin (due, id) pop order, the peek used by the event engine's
quiet-tick skipper, and the snapshot round-trip.
"""

import pytest

from repro.fleet import RetryQueue
from repro.serving.scheduler import ServeRequest


def req(request_id, arrival_s=0.0):
    return ServeRequest(request_id=request_id, arrival_s=arrival_s,
                        prompt_tokens=64, output_tokens=8)


class TestOrdering:
    def test_pops_in_due_then_id_order(self):
        queue = RetryQueue()
        queue.push(3.0, req(1))
        queue.push(1.0, req(2))
        queue.push(2.0, req(3))
        assert [r.request_id for r in queue.pop_due(10.0)] == [2, 3, 1]

    def test_ties_break_by_request_id(self):
        queue = RetryQueue()
        for request_id in (9, 4, 7):
            queue.push(5.0, req(request_id))
        assert [r.request_id for r in queue.pop_due(5.0)] == [4, 7, 9]

    def test_pop_due_is_inclusive_and_partial(self):
        queue = RetryQueue()
        queue.push(1.0, req(1))
        queue.push(2.0, req(2))
        queue.push(3.0, req(3))
        assert [r.request_id for r in queue.pop_due(2.0)] == [1, 2]
        assert len(queue) == 1
        assert queue.next_due_s == 3.0

    def test_drain_empties_in_order(self):
        queue = RetryQueue()
        queue.push(2.0, req(1))
        queue.push(1.0, req(2))
        assert [r.request_id for r in queue.drain()] == [2, 1]
        assert not queue


class TestPeek:
    def test_next_due_is_nondestructive(self):
        queue = RetryQueue()
        assert queue.next_due_s is None
        queue.push(4.0, req(1))
        queue.push(2.0, req(2))
        assert queue.next_due_s == 2.0
        assert len(queue) == 2  # peeking popped nothing

    def test_len_and_bool(self):
        queue = RetryQueue()
        assert len(queue) == 0 and not queue
        queue.push(1.0, req(1))
        assert len(queue) == 1 and queue


class TestStateRoundTrip:
    def test_round_trip_preserves_order(self):
        queue = RetryQueue()
        queue.push(3.0, req(1))
        queue.push(1.0, req(2))
        queue.push(1.0, req(3))
        requests = {i: req(i) for i in (1, 2, 3)}
        restored = RetryQueue()
        restored.from_state(queue.to_state(), requests.__getitem__)
        assert restored.next_due_s == 1.0
        assert ([r.request_id for r in restored.drain()]
                == [r.request_id for r in queue.drain()])

    def test_state_references_by_id_only(self):
        queue = RetryQueue()
        queue.push(2.5, req(7))
        assert queue.to_state() == [[2.5, 7]]

    def test_from_state_surfaces_unknown_ids(self):
        restored = RetryQueue()

        def resolve(request_id):
            raise KeyError(request_id)

        with pytest.raises(KeyError):
            restored.from_state([[1.0, 42]], resolve)
