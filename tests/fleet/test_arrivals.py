"""Arrival-process generators: determinism, shape, and regime behavior."""

import statistics

import pytest

from repro.fleet.arrivals import (
    diurnal_arrivals,
    make_arrivals,
    mmpp_arrivals,
    poisson_arrivals,
    trace_replay,
)


def gaps(requests):
    arrivals = [r.arrival_s for r in requests]
    return [b - a for a, b in zip(arrivals, arrivals[1:])]


class TestCommonContract:
    @pytest.mark.parametrize("kind", ["poisson", "mmpp", "diurnal"])
    def test_deterministic_and_sorted(self, kind):
        a = make_arrivals(kind, 50, 4.0, seed=3)
        b = make_arrivals(kind, 50, 4.0, seed=3)
        assert a == b
        arrivals = [r.arrival_s for r in a]
        assert arrivals == sorted(arrivals)
        assert [r.request_id for r in a] == list(range(50))

    @pytest.mark.parametrize("kind", ["poisson", "mmpp", "diurnal"])
    def test_seed_changes_stream(self, kind):
        assert make_arrivals(kind, 30, 4.0, seed=1) != \
            make_arrivals(kind, 30, 4.0, seed=2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            make_arrivals("weibull", 10, 1.0)


class TestPoisson:
    def test_mean_rate_approximate(self):
        requests = poisson_arrivals(400, rate_per_s=5.0, seed=0)
        mean_gap = statistics.fmean(gaps(requests))
        assert 0.15 < mean_gap < 0.27  # 1/5 s +- sampling noise

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0, 1.0)
        with pytest.raises(ValueError):
            poisson_arrivals(5, 0.0)


class TestMmpp:
    def test_burstier_than_poisson(self):
        """MMPP inter-arrival gaps are overdispersed vs exponential.

        The squared coefficient of variation of a Poisson process's
        gaps is 1; a 2-state MMPP with distinct rates exceeds it.
        """
        poisson = poisson_arrivals(600, rate_per_s=4.0, seed=1)
        mmpp = mmpp_arrivals(600, calm_rate_per_s=1.0, burst_rate_per_s=16.0,
                             mean_calm_s=10.0, mean_burst_s=5.0, seed=1)

        def cv2(requests):
            g = gaps(requests)
            return statistics.variance(g) / statistics.fmean(g) ** 2

        assert cv2(mmpp) > 1.5 * cv2(poisson)

    def test_validation(self):
        with pytest.raises(ValueError):
            mmpp_arrivals(10, 4.0, 2.0)  # burst < calm
        with pytest.raises(ValueError):
            mmpp_arrivals(10, 4.0, 8.0, mean_calm_s=0.0)
        with pytest.raises(ValueError):
            mmpp_arrivals(0, 1.0, 2.0)


class TestDiurnal:
    def test_peak_denser_than_trough(self):
        """More arrivals land in the peak half-period than the trough."""
        period = 100.0
        requests = diurnal_arrivals(800, mean_rate_per_s=6.0,
                                    period_s=period, peak_to_trough=6.0,
                                    seed=2)
        peak = sum(1 for r in requests if (r.arrival_s % period) < period / 2)
        trough = len(requests) - peak
        assert peak > 1.4 * trough

    def test_flat_curve_allowed(self):
        requests = diurnal_arrivals(50, 4.0, peak_to_trough=1.0, seed=0)
        assert len(requests) == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_arrivals(10, 4.0, peak_to_trough=0.5)
        with pytest.raises(ValueError):
            diurnal_arrivals(10, 0.0)


class TestTraceReplay:
    def test_exact_replay(self):
        trace = [(0.0, 128, 32), (1.5, 64, 8), (1.5, 256, 16)]
        requests = trace_replay(trace)
        assert [(r.arrival_s, r.prompt_tokens, r.output_tokens)
                for r in requests] == trace
        assert [r.request_id for r in requests] == [0, 1, 2]

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            trace_replay([])
