"""Fleet event loop: conservation, determinism, scaling, planning."""

import pytest

from repro.fleet import (
    AutoscalerConfig,
    CostSloRouter,
    FleetSimulator,
    ReactiveAutoscaler,
    capacity_plan,
    capacity_sweep,
    fixed_fleet,
    poisson_arrivals,
    replica_spec,
    trace_replay,
)

TDX = replica_spec("tdx", max_batch=16, kv_capacity_tokens=65536)
CGPU = replica_spec("cgpu", max_batch=16, kv_capacity_tokens=65536)

STREAM = poisson_arrivals(40, rate_per_s=4.0, mean_prompt=128,
                          mean_output=32, seed=11)


@pytest.fixture(scope="module")
def two_replica_report():
    return fixed_fleet(TDX, 2).run(STREAM)


class TestConservation:
    def test_every_request_served_exactly_once(self, two_replica_report):
        report = two_replica_report
        assert len(report.outcomes) == len(STREAM)
        assert sorted(o.request.request_id for o in report.outcomes) == \
            [r.request_id for r in STREAM]
        assert all(o.finish_s > 0 for o in report.outcomes)
        assert sum(u.requests_served for u in report.replicas) == len(STREAM)
        assert sum(u.tokens_out for u in report.replicas) == \
            sum(r.output_tokens for r in STREAM)

    def test_timelines_consistent(self, two_replica_report):
        for outcome in two_replica_report.outcomes:
            assert (outcome.request.arrival_s <= outcome.first_token_s
                    <= outcome.finish_s <= two_replica_report.end_s)

    def test_makespan_from_first_arrival(self, two_replica_report):
        report = two_replica_report
        assert report.start_s == min(r.arrival_s for r in STREAM)
        assert report.makespan_s == report.end_s - report.start_s

    def test_cost_joins_pricing(self, two_replica_report):
        report = two_replica_report
        expected = sum(u.billed_hours * u.price_hr for u in report.replicas)
        assert report.cost_usd == pytest.approx(expected)
        assert report.usd_per_mtok == pytest.approx(
            report.cost_usd / report.tokens_out * 1e6)

    def test_slo_attainment_bounds(self, two_replica_report):
        report = two_replica_report
        assert report.slo_attainment(1e9) == 1.0
        curve = report.slo_curve([0.1, 1.0, 10.0, 1e9])
        values = list(curve.values())
        assert values == sorted(values)  # attainment non-decreasing in SLO


class TestDeterminism:
    def test_same_config_same_report(self, two_replica_report):
        rerun = fixed_fleet(TDX, 2).run(STREAM)
        assert rerun.to_dict() == two_replica_report.to_dict()

    def test_autoscaled_run_deterministic(self):
        def run():
            scaler = ReactiveAutoscaler(AutoscalerConfig(
                max_replicas=4, scale_up_load=3.0, scale_down_load=0.5,
                cooldown_s=5.0, boot_latency_s=8.0))
            return FleetSimulator([TDX], autoscaler=scaler).run(STREAM)
        assert run().to_dict() == run().to_dict()


class TestScaling:
    def test_more_replicas_never_hurt_p99_ttft(self, two_replica_report):
        """The fleet-level metamorphic invariant: under fixed load,
        adding a replica never raises p99 TTFT."""
        p99s = [fixed_fleet(TDX, 1).run(STREAM).ttft_percentile(99),
                two_replica_report.ttft_percentile(99),
                fixed_fleet(TDX, 3).run(STREAM).ttft_percentile(99)]
        assert p99s[0] >= p99s[1] >= p99s[2] - 1e-9

    def test_more_replicas_cost_more_per_token_when_underloaded(self):
        light = poisson_arrivals(10, rate_per_s=1.0, mean_prompt=64,
                                 mean_output=16, seed=3)
        one = fixed_fleet(TDX, 1).run(light)
        three = fixed_fleet(TDX, 3).run(light)
        assert three.cost_usd > one.cost_usd

    def test_cgpu_fleet_faster_but_pricier_than_tdx(self):
        tdx = fixed_fleet(TDX, 1).run(STREAM)
        cgpu = fixed_fleet(CGPU, 1).run(STREAM)
        assert cgpu.ttft_percentile(99) < tdx.ttft_percentile(99)
        assert cgpu.cost_usd / cgpu.makespan_s > tdx.cost_usd / tdx.makespan_s


class TestAutoscaledFleet:
    def test_burst_provisions_and_drains(self):
        scaler = ReactiveAutoscaler(AutoscalerConfig(
            max_replicas=4, scale_up_load=3.0, scale_down_load=0.5,
            cooldown_s=2.0, boot_latency_s=5.0))
        fleet = FleetSimulator([TDX], autoscaler=scaler)
        report = fleet.run(STREAM)
        assert report.peak_replicas > 1
        assert any(e.action == "up" for e in report.scale_events)
        assert len(report.outcomes) == len(STREAM)
        # Scaled-up instances bill from provisioning, not readiness.
        late = [u for u in report.replicas if u.provisioned_s > 0]
        assert late and all(u.billed_hours > 0 for u in late)

    def test_drained_replicas_retire_and_stop_billing(self):
        scaler = ReactiveAutoscaler(AutoscalerConfig(
            max_replicas=3, scale_up_load=2.0, scale_down_load=0.8,
            cooldown_s=1.0, boot_latency_s=2.0))
        # A burst followed by a long quiet tail forces a scale-down.
        burst = poisson_arrivals(30, rate_per_s=10.0, mean_prompt=96,
                                 mean_output=24, seed=5)
        tail = [r.__class__(r.request_id + 100, r.arrival_s + 60.0,
                            r.prompt_tokens, r.output_tokens)
                for r in poisson_arrivals(6, 0.5, mean_prompt=64,
                                          mean_output=16, seed=6)]
        report = FleetSimulator([TDX], autoscaler=scaler).run(burst + tail)
        downs = [e for e in report.scale_events if e.action == "down"]
        assert downs
        retired = [u for u in report.replicas if u.retired_s is not None]
        assert retired
        for usage in retired:
            assert usage.billed_hours == pytest.approx(
                (usage.retired_s - usage.provisioned_s) / 3600.0)


class TestHeterogeneousRouting:
    def test_cost_slo_spill_pattern(self):
        """Cheap TDX carries the base load; the cGPU takes the spill."""
        heavy = poisson_arrivals(60, rate_per_s=8.0, mean_prompt=192,
                                 mean_output=48, seed=9)
        fleet = FleetSimulator([TDX, CGPU], router=CostSloRouter(2.0))
        report = fleet.run(heavy)
        served = {u.kind: u.requests_served for u in report.replicas}
        assert served["tdx"] > 0 and served["cgpu"] > 0
        assert len(report.outcomes) == len(heavy)


TRACE = trace_replay([(0.25 * i, 192 + (37 * i) % 160,
                       48 + (13 * i) % 48) for i in range(60)])


@pytest.fixture(scope="module")
def capacity_plans():
    return capacity_sweep([TDX, CGPU], TRACE, slo_ttft_s=2.0, max_replicas=6)


class TestCapacityPlanning:
    def test_plan_finds_minimum_fleet(self, capacity_plans):
        plan = capacity_plans["tdx"]
        assert plan.replicas_needed is not None
        assert plan.points[-1].meets_slo
        assert all(not p.meets_slo for p in plan.points[:-1])
        assert plan.usd_per_mtok_at_slo > 0

    def test_infeasible_slo_returns_none(self):
        short = TRACE[:16]
        plan = capacity_plan(TDX, short, slo_ttft_s=1e-6, max_replicas=2)
        assert plan.replicas_needed is None
        assert plan.usd_per_mtok_at_slo is None
        assert len(plan.points) == 2

    def test_sweep_covers_kinds(self, capacity_plans):
        assert set(capacity_plans) == {"tdx", "cgpu"}
        # The cGPU is faster per instance: it never needs more replicas.
        assert (capacity_plans["cgpu"].replicas_needed
                <= capacity_plans["tdx"].replicas_needed)

    def test_validation(self):
        with pytest.raises(ValueError):
            capacity_plan(TDX, TRACE, slo_ttft_s=0.0)
        with pytest.raises(ValueError):
            capacity_plan(TDX, TRACE, slo_ttft_s=1.0, max_replicas=0)
        with pytest.raises(ValueError):
            fixed_fleet(TDX, 0)
        with pytest.raises(ValueError):
            FleetSimulator([])
        with pytest.raises(ValueError):
            FleetSimulator([TDX], tick_s=0.0)
        with pytest.raises(ValueError):
            fixed_fleet(TDX, 1).run([])
