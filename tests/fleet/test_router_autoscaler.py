"""Router policies and the reactive autoscaler, in isolation."""

import pytest

from repro.fleet.autoscaler import AutoscalerConfig, ReactiveAutoscaler
from repro.fleet.replica import Replica, replica_spec
from repro.fleet.router import (
    CostSloRouter,
    KvPressureRouter,
    LeastOutstandingRouter,
    RoundRobinRouter,
    make_router,
)
from repro.serving.scheduler import ServeRequest

TDX = replica_spec("tdx", max_batch=8, kv_capacity_tokens=8192)
CGPU = replica_spec("cgpu", max_batch=8, kv_capacity_tokens=8192)


def live_replicas(*specs):
    return [Replica(replica_id=i, spec=spec, provisioned_s=0.0,
                    boot_latency_s=0.0) for i, spec in enumerate(specs)]


def request(request_id=0, arrival=0.0, prompt=64, output=8):
    return ServeRequest(request_id, arrival, prompt, output)


class TestRouters:
    def test_round_robin_cycles(self):
        replicas = live_replicas(TDX, TDX, TDX)
        router = RoundRobinRouter()
        picks = [router.choose(request(i), replicas, 0.0).replica_id
                 for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_outstanding_prefers_empty(self):
        replicas = live_replicas(TDX, TDX)
        replicas[0].submit(request(0))
        chosen = LeastOutstandingRouter().choose(request(1), replicas, 0.0)
        assert chosen.replica_id == 1

    def test_kv_pressure_prefers_free_pool(self):
        replicas = live_replicas(TDX, TDX)
        # Fill replica 0's pool without stepping (tokens stay allocated).
        replicas[0].submit(request(0, prompt=2048, output=8))
        replicas[0].step(0.0)  # admit -> blocks allocated
        chosen = KvPressureRouter().choose(request(1), replicas, 0.0)
        assert chosen.replica_id == 1

    def test_cost_slo_prefers_cheap_until_risk(self):
        replicas = live_replicas(TDX, CGPU)
        router = CostSloRouter(slo_ttft_s=30.0)
        # Unloaded: cheap TDX wins despite being slower.
        assert router.choose(request(0), replicas, 0.0).replica_id == 0

    def test_cost_slo_spills_to_gpu_under_risk(self):
        replicas = live_replicas(TDX, CGPU)
        router = CostSloRouter(slo_ttft_s=1.0, risk_factor=0.5)
        # Pile queued prefill work on the TDX replica until its TTFT
        # estimate blows the SLO budget; the router must spill.
        for i in range(40):
            replicas[0].submit(request(i, prompt=512, output=8))
        chosen = router.choose(request(99), replicas, 0.0)
        assert chosen.replica_id == 1

    def test_no_routable_replica_raises(self):
        booting = [Replica(0, TDX, provisioned_s=0.0, boot_latency_s=60.0)]
        with pytest.raises(ValueError, match="no routable"):
            LeastOutstandingRouter().choose(request(), booting, 0.0)

    def test_make_router_names(self):
        for kind in ("round-robin", "least-outstanding", "kv-pressure",
                     "cost-slo"):
            assert make_router(kind).name == kind
        with pytest.raises(ValueError, match="unknown router"):
            make_router("random")

    def test_cost_slo_validation(self):
        with pytest.raises(ValueError):
            CostSloRouter(0.0)
        with pytest.raises(ValueError):
            CostSloRouter(1.0, risk_factor=0.0)


class TestReplicaLifecycle:
    def test_boot_then_live_then_drain_then_retire(self):
        replica = Replica(0, TDX, provisioned_s=10.0, boot_latency_s=5.0)
        assert replica.state == "booting" and not replica.routable
        replica.activate_if_ready(12.0)
        assert replica.state == "booting"
        replica.activate_if_ready(15.0)
        assert replica.state == "live" and replica.routable
        # Clock floored at readiness: no serving in the past.
        assert replica.scheduler.clock_s >= 15.0
        replica.drain()
        assert replica.state == "draining" and not replica.routable
        replica.retire_if_drained(20.0)
        assert replica.state == "retired"
        assert replica.retired_s == 20.0

    def test_billing_covers_boot_and_drain(self):
        replica = Replica(0, TDX, provisioned_s=0.0, boot_latency_s=30.0)
        assert replica.billed_hours(end_s=3600.0) == pytest.approx(1.0)
        assert replica.cost_usd(3600.0) == pytest.approx(TDX.price_hr)
        replica.retired_s = 1800.0
        assert replica.billed_hours(end_s=3600.0) == pytest.approx(0.5)

    def test_submit_to_unroutable_rejected(self):
        replica = Replica(0, TDX, provisioned_s=0.0, boot_latency_s=60.0)
        with pytest.raises(ValueError, match="not routable"):
            replica.submit(request())

    def test_replica_spec_pricing(self):
        tdx = replica_spec("tdx")
        cgpu = replica_spec("cgpu")
        gpu = replica_spec("gpu")
        assert cgpu.price_hr > gpu.price_hr > tdx.price_hr
        small = replica_spec("tdx", cores=8)
        assert small.price_hr < tdx.price_hr
        with pytest.raises(ValueError, match="unknown replica kind"):
            replica_spec("asgx")


class TestAutoscaler:
    def config(self, **overrides):
        params = dict(min_replicas=1, max_replicas=4, scale_up_load=4.0,
                      scale_down_load=1.0, cooldown_s=10.0,
                      boot_latency_s=5.0)
        params.update(overrides)
        return AutoscalerConfig(**params)

    def test_scales_up_past_threshold(self):
        scaler = ReactiveAutoscaler(self.config())
        assert scaler.decide(0.0, outstanding=10, live_replicas=2,
                             active_replicas=2) == 1
        assert scaler.events[-1].action == "up"

    def test_cooldown_blocks_consecutive_decisions(self):
        scaler = ReactiveAutoscaler(self.config())
        assert scaler.decide(0.0, 10, 2, 2) == 1
        assert scaler.decide(5.0, 20, 2, 2) == 0  # within cooldown
        assert scaler.decide(10.0, 20, 2, 2) == 1

    def test_scale_down_respects_min_and_hysteresis(self):
        scaler = ReactiveAutoscaler(self.config(min_replicas=2))
        assert scaler.decide(0.0, 0, 3, 3) == -1
        scaler = ReactiveAutoscaler(self.config(min_replicas=2))
        assert scaler.decide(0.0, 0, 2, 2) == 0  # at the floor
        scaler = ReactiveAutoscaler(self.config())
        assert scaler.decide(0.0, 5, 2, 2) == 0  # between thresholds

    def test_max_replicas_cap(self):
        scaler = ReactiveAutoscaler(self.config(max_replicas=2))
        assert scaler.decide(0.0, 100, 2, 2) == 0

    def test_booting_capacity_counts(self):
        """Load is judged against bought capacity, not just live."""
        scaler = ReactiveAutoscaler(self.config())
        # 8 outstanding over 2 active (1 live + 1 booting) = 4.0: not > 4
        assert scaler.decide(0.0, 8, 1, 2) == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError):
            AutoscalerConfig(scale_up_load=1.0, scale_down_load=2.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(cooldown_s=-1.0)
