"""Phased confidential boots layered under the fleet replica lifecycle."""

import math

import pytest

from repro.faults import FaultEvent, FaultSchedule, RetryPolicy
from repro.fleet import (
    AutoscalerConfig,
    FleetSimulator,
    ReactiveAutoscaler,
    fixed_fleet,
    poisson_arrivals,
    replica_spec,
)
from repro.fleet.replica import ATTESTING as REPLICA_ATTESTING
from repro.fleet.replica import BOOTING, LIVE, Replica
from repro.fleet.table import RequestTable
from repro.tee.boot import (
    ATTESTING,
    BOOT_PHASES,
    PROVISIONING,
    boot_profile,
    constant_profile,
)

LEGACY = replica_spec("tdx", max_batch=8, kv_capacity_tokens=16384)
PHASED = replica_spec("tdx", max_batch=8, kv_capacity_tokens=16384,
                      boot=boot_profile("tdx"))

STREAM = poisson_arrivals(24, rate_per_s=1.2, mean_prompt=128,
                          mean_output=48, seed=11)


def _requests(engine):
    return RequestTable.from_requests(STREAM) if engine == "event" else STREAM


class TestReplicaBootWiring:
    def test_phased_spec_derives_boot_latency(self):
        replica = Replica(0, PHASED, provisioned_s=0.0, boot_latency_s=123.0)
        sequence = PHASED.boot_sequence()
        # The provisioner's constant is superseded by the phase sum.
        assert replica.boot_latency_s == sequence.total_s
        assert replica.ready_s == sequence.total_s
        assert replica.state == BOOTING

    def test_legacy_spec_keeps_constant(self):
        replica = Replica(0, LEGACY, provisioned_s=0.0, boot_latency_s=7.5)
        assert replica.boot is None
        assert replica.boot_latency_s == 7.5
        assert replica.reattest_s is None

    def test_boot_phase_walkthrough(self):
        replica = Replica(0, PHASED, provisioned_s=0.0, boot_latency_s=0.0)
        sequence = replica.boot
        for phase, begin, end in sequence.schedule(replica.ready_s):
            if end - begin > 1e-5:
                assert replica.boot_phase((begin + end) / 2) == phase
        replica.activate_if_ready(replica.ready_s)
        assert replica.state == LIVE
        assert replica.boot_phase(replica.ready_s) is None

    def test_legacy_replica_has_no_phase(self):
        replica = Replica(0, LEGACY, provisioned_s=0.0, boot_latency_s=7.5)
        assert replica.boot_phase(3.0) is None

    def test_reattest_excludes_provisioning(self):
        replica = Replica(0, PHASED, provisioned_s=0.0, boot_latency_s=0.0)
        sequence = replica.boot
        assert replica.reattest_s == sequence.remaining_from(ATTESTING)
        assert replica.reattest_s < sequence.total_s

    def test_crash_restart_pays_reattest_not_full_boot(self):
        replica = Replica(0, PHASED, provisioned_s=0.0, boot_latency_s=0.0)
        replica.activate_if_ready(replica.ready_s)
        replica.crash(100.0, restart_after_s=5.0)
        assert replica.restart_if_due(105.0)
        assert replica.state == BOOTING
        assert replica.ready_s == pytest.approx(105.0 + replica.reattest_s)
        # The restarted boot re-enters at ATTESTING, not PROVISIONING.
        assert replica.boot_phase(105.0 + 1e-3) == ATTESTING

    def test_legacy_crash_restart_is_instant(self):
        replica = Replica(0, LEGACY, provisioned_s=0.0, boot_latency_s=0.0)
        replica.crash(100.0, restart_after_s=5.0)
        assert replica.restart_if_due(105.0)
        assert replica.ready_s == 105.0

    def test_mid_boot_attestation_restarts_from_attesting(self):
        replica = Replica(0, PHASED, provisioned_s=0.0, boot_latency_s=0.0)
        struck = replica.boot.total_s * 0.5  # mid-boot
        replica.begin_attestation(struck + replica.reattest_s)
        assert replica.state == REPLICA_ATTESTING
        # Immediately after the failure the instance is attesting again
        # (provisioning is never repaid), and every later instant maps
        # into the restarted sequence.
        assert replica.boot_phase(struck + 1e-3) == ATTESTING
        phases = {replica.boot_phase(struck + f * replica.reattest_s)
                  for f in (0.1, 0.4, 0.7, 0.95)}
        assert phases <= set(BOOT_PHASES) - {PROVISIONING}
        replica.complete_attestation()
        assert replica.state == LIVE

    def test_billing_meters_every_phase(self):
        # The rental starts at provisioning: all five phases are paid
        # for, so the bill through readiness is exactly the boot total.
        replica = Replica(0, PHASED, provisioned_s=10.0, boot_latency_s=0.0)
        total = replica.boot.total_s
        assert replica.billed_hours(10.0 + total) == pytest.approx(
            total / 3600.0)
        mid = 10.0 + total * 0.4
        assert replica.billed_hours(mid) == pytest.approx(
            (mid - 10.0) / 3600.0)


class TestReplicaValidation:
    """Regression: NaN slipped through the old `< 0` guard."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     -float("inf"), -1.0])
    def test_bad_boot_latency_rejected(self, bad):
        with pytest.raises(ValueError, match="boot_latency_s"):
            Replica(0, LEGACY, provisioned_s=0.0, boot_latency_s=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_bad_provisioned_rejected(self, bad):
        with pytest.raises(ValueError, match="provisioned_s"):
            Replica(0, LEGACY, provisioned_s=bad, boot_latency_s=0.0)

    def test_nan_cannot_poison_ready_time(self):
        replica = Replica(0, LEGACY, provisioned_s=2.0, boot_latency_s=3.0)
        assert math.isfinite(replica.ready_s)


class TestFleetLifecycle:
    def test_phased_fleet_serves_after_boot(self):
        report = fixed_fleet(PHASED, 2).run(STREAM)
        total = PHASED.boot_sequence().total_s
        assert len(report.outcomes) == len(STREAM)
        # Nothing finishes before the fleet is live.
        assert min(o.first_token_s for o in report.outcomes) >= total

    def test_constant_profile_matches_legacy_fleet(self):
        armed = replica_spec("tdx", max_batch=8, kv_capacity_tokens=16384,
                             boot=constant_profile("tdx", 0.0))
        a = fixed_fleet(LEGACY, 2).run(STREAM)
        b = fixed_fleet(armed, 2).run(STREAM)
        assert a.to_dict() == b.to_dict()

    @pytest.mark.parametrize("engine", ["stepped", "event"])
    def test_reattestation_outage_is_boot_derived(self, engine):
        faults = FaultSchedule((
            FaultEvent(time_s=27.0, kind="attestation_failure",
                       replica_id=0, duration_s=6.0),
        ))
        retry = RetryPolicy(timeout_s=60.0, max_attempts=4, seed=3)
        fleet = fixed_fleet(PHASED, 2, faults=faults, retry_policy=retry,
                            engine=engine)
        report = fleet.run(_requests(engine))
        # The phased outage pays the re-attestation remainder, not the
        # drawn duration: the fault log records the revocation.
        assert any(a.event.kind == "attestation_failure"
                   for a in report.fault_events)
        assert len(report.outcomes) + len(report.shed) == len(STREAM)

    def test_engine_parity_with_phased_boots_and_faults(self):
        faults = FaultSchedule((
            FaultEvent(time_s=27.0, kind="attestation_failure",
                       replica_id=0, duration_s=6.0),
            FaultEvent(time_s=12.0, kind="crash", replica_id=1,
                       restart_after_s=4.0),
        ))
        retry = RetryPolicy(timeout_s=60.0, max_attempts=4, seed=3)
        reports = [
            fixed_fleet(PHASED, 2, faults=faults, retry_policy=retry,
                        engine=engine).run(_requests(engine))
            for engine in ("stepped", "event")
        ]
        assert reports[0].to_dict() == reports[1].to_dict()

    def test_autoscaled_scale_ups_pay_phase_sum(self):
        config = AutoscalerConfig(min_replicas=1, max_replicas=3,
                                  scale_up_load=2.0, scale_down_load=0.5,
                                  cooldown_s=4.0, boot_latency_s=1.0)
        burst = poisson_arrivals(36, rate_per_s=6.0, mean_prompt=128,
                                 mean_output=48, seed=3)
        sim = FleetSimulator([PHASED],
                             autoscaler=ReactiveAutoscaler(config))
        report = sim.run(burst)
        assert report.scale_events
        total = PHASED.boot_sequence().total_s
        scaled = [u for u in report.replicas if u.replica_id > 0]
        assert scaled
        # Every scale-up replica pays the derived phase sum, not the
        # autoscaler's 1s constant.
        for usage in scaled:
            assert usage.billed_hours >= total / 3600.0 * 0.99
