"""Unit tests for the audit registry, runner, and golden machinery."""

import json

import pytest

from repro.validate import (
    AuditContext,
    AuditReport,
    CheckFailure,
    CheckSkip,
    all_checks,
    check,
    checks_matching,
    run_audit,
    run_check,
    unregister,
)
from repro.validate.golden import compare_series


@pytest.fixture
def scratch_check():
    """Register a throwaway check and clean it up."""
    registered = []

    def factory(name, func, **kwargs):
        kwargs.setdefault("family", "differential")
        check(name, **kwargs)(func)
        registered.append(name)
        return all_checks()[name]

    yield factory
    for name in registered:
        unregister(name)


class TestRegistry:
    def test_floor_and_families(self):
        specs = all_checks().values()
        assert len(specs) >= 25
        by_family = {}
        for spec in specs:
            by_family.setdefault(spec.family, []).append(spec)
        assert set(by_family) == {"differential", "metamorphic", "golden",
                                  "chaos", "state", "tenancy", "attest"}
        # Every family is substantive, not a token single check.
        assert all(len(group) >= 5 for group in by_family.values())

    def test_names_are_dotted_and_unique(self):
        names = [spec.name for spec in all_checks().values()]
        assert len(names) == len(set(names))
        assert all("." in name for name in names)

    def test_duplicate_name_rejected(self, scratch_check):
        scratch_check("scratch.dup", lambda ctx: "ok")
        with pytest.raises(ValueError, match="duplicate"):
            check("scratch.dup", family="differential")(lambda ctx: "ok")

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            check("scratch.bad_family", family="vibes")(lambda ctx: "ok")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            check("scratch.bad_sev", family="golden",
                  severity="meh")(lambda ctx: "ok")

    def test_undotted_name_rejected(self):
        with pytest.raises(ValueError):
            check("flat", family="golden")(lambda ctx: "ok")

    def test_matching_filters(self, scratch_check):
        scratch_check("scratch.tagged", lambda ctx: "ok",
                      layers=("xyzzy",))
        assert [s.name for s in checks_matching(layers=("xyzzy",))] == \
            ["scratch.tagged"]
        assert [s.name for s in checks_matching(names=("scratch.tag",))] == \
            ["scratch.tagged"]
        assert checks_matching(families=("golden",),
                               layers=("xyzzy",)) == []


class TestRunner:
    def test_pass_captures_detail(self, scratch_check):
        spec = scratch_check("scratch.passes", lambda ctx: "all good")
        result = run_check(spec, AuditContext())
        assert result.status == "pass"
        assert result.detail == "all good"
        assert result.duration_s >= 0

    def test_failure_captures_deltas(self, scratch_check):
        def failing(ctx):
            raise CheckFailure("off by a lot", deltas={"rel_err": 0.5})

        spec = scratch_check("scratch.fails", failing)
        result = run_check(spec, AuditContext())
        assert result.status == "fail"
        assert "off by a lot" in result.detail
        assert result.deltas == {"rel_err": 0.5}

    def test_skip_captures_reason(self, scratch_check):
        def skipping(ctx):
            raise CheckSkip("missing snapshot")

        spec = scratch_check("scratch.skips", skipping)
        result = run_check(spec, AuditContext())
        assert result.status == "skip"
        assert "missing snapshot" in result.detail

    def test_crash_is_a_failure(self, scratch_check):
        def crashing(ctx):
            raise RuntimeError("boom")

        spec = scratch_check("scratch.crashes", crashing)
        result = run_check(spec, AuditContext())
        assert result.status == "fail"
        assert "RuntimeError" in result.detail

    def test_run_audit_rejects_empty_selection(self):
        with pytest.raises(ValueError, match="no checks match"):
            run_audit(names=("no.such.check.exists",))

    def test_strict_vs_nonstrict_gating(self, scratch_check):
        def warns(ctx):
            raise CheckFailure("drifting")

        scratch_check("scratch.warns", warns, severity="warn")
        report = run_audit(names=("scratch.warns",), ctx=AuditContext())
        assert not report.ok(strict=True)
        assert report.ok(strict=False)

    def test_report_json_round_trip(self, scratch_check):
        spec = scratch_check("scratch.roundtrip", lambda ctx: "ok")
        report = run_audit(names=("scratch.roundtrip",), ctx=AuditContext())
        clone = AuditReport.from_json(report.to_json())
        assert clone == report
        assert spec.name in report.render(verbose=True)
        assert report.counts["pass"] == 1


class TestGolden:
    def test_regen_writes_then_compare_passes(self, tmp_path):
        ctx = AuditContext(golden_dir=tmp_path, regen=True)
        spec = all_checks()["golden.fig11_cgpu_scaling"]
        assert run_check(spec, ctx).status == "pass"
        path = tmp_path / "fig11_cgpu_scaling.json"
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["tolerance_rel"] > 0
        assert payload["series"]
        # Same context, compare mode: bitwise-identical inputs must pass.
        compare_ctx = AuditContext(golden_dir=tmp_path)
        compare_ctx._sim_cache = ctx._sim_cache
        assert run_check(spec, compare_ctx).status == "pass"

    def test_missing_snapshot_skips(self, tmp_path):
        ctx = AuditContext(golden_dir=tmp_path)
        spec = all_checks()["golden.fig11_cgpu_scaling"]
        result = run_check(spec, ctx)
        assert result.status == "skip"
        assert "--regen" in result.detail

    def test_drift_detected(self, tmp_path):
        ctx = AuditContext(golden_dir=tmp_path, regen=True)
        spec = all_checks()["golden.fig11_cgpu_scaling"]
        run_check(spec, ctx)
        path = tmp_path / "fig11_cgpu_scaling.json"
        payload = json.loads(path.read_text())
        key = sorted(payload["series"])[0]
        payload["series"][key] *= 1.01
        path.write_text(json.dumps(payload))
        compare_ctx = AuditContext(golden_dir=tmp_path)
        compare_ctx._sim_cache = ctx._sim_cache
        result = run_check(spec, compare_ctx)
        assert result.status == "fail"
        assert "drift" in result.detail

    def test_compare_series_reports_key_mismatches(self):
        problems = compare_series({"a": 1.0, "c": 2.0},
                                  {"a": 1.0, "b": 2.0}, rel_tol=1e-6)
        assert any("missing" in p for p in problems)
        assert any("unexpected" in p for p in problems)
        assert compare_series({"a": 1.0}, {"a": 1.0 + 1e-9},
                              rel_tol=1e-6) == []
        assert compare_series({"a": 1e-13}, {"a": 0.0}, rel_tol=1e-6) == []
        assert compare_series({"a": 1.0}, {"a": 0.0}, rel_tol=1e-6)

    def test_committed_snapshots_exist_for_every_golden_check(self):
        from repro.validate import GOLDEN_DIR
        golden = [s for s in all_checks().values() if s.family == "golden"]
        assert len(golden) >= 14
        for spec in golden:
            stem = spec.name.split(".", 1)[1]
            assert (GOLDEN_DIR / f"{stem}.json").exists(), spec.name
