"""Pytest adapter: every registered audit check is a tier-1 test.

One parametrized test per check in the ``repro.validate`` registry, so
``pytest tests/validate`` and ``scripts/audit.py`` exercise exactly the
same battery.  The context (with its simulation memo) is shared across
the module to keep the battery fast.
"""

import pytest

from repro.validate import AuditContext, all_checks, run_check

_SPECS = sorted(all_checks().values(), key=lambda s: (s.family, s.name))


@pytest.fixture(scope="module")
def audit_ctx():
    """One shared context so checks reuse memoized simulations."""
    return AuditContext()


@pytest.mark.parametrize("spec", _SPECS, ids=[s.name for s in _SPECS])
def test_check(spec, audit_ctx):
    result = run_check(spec, audit_ctx)
    if result.status == "skip":
        pytest.skip(result.detail)
    assert result.status == "pass", (
        f"{spec.name} [{spec.family}/{spec.severity}] failed: "
        f"{result.detail} deltas={result.deltas}")


def test_registry_spans_required_surface():
    """The ISSUE floor: >= 25 checks covering every family."""
    specs = all_checks().values()
    assert len(specs) >= 25
    families = {spec.family for spec in specs}
    assert families == {"differential", "metamorphic", "golden", "chaos",
                        "state", "tenancy", "attest"}
