"""BM25, dense, and reranked retrieval: correctness and quality."""

import pytest
from hypothesis import given, strategies as st

from repro.rag.bm25 import Bm25Retriever
from repro.rag.corpus import Document, generate_corpus
from repro.rag.dense import DenseRetriever, HashingSentenceEncoder
from repro.rag.inverted_index import InvertedIndex
from repro.rag.metrics import mean_metric, ndcg_at_k, recall_at_k
from repro.rag.rerank import CrossEncoderScorer, RerankedBm25Retriever


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(num_docs=200, num_topics=8, num_queries=16,
                           seed=2)


@pytest.fixture(scope="module")
def index(corpus):
    idx = InvertedIndex()
    idx.index_all(corpus.documents)
    return idx


class TestBm25:
    def test_exact_term_match_ranks_first(self):
        idx = InvertedIndex()
        idx.index_all([
            Document("hit", "quantum entanglement experiment results", 0),
            Document("miss", "cooking pasta with tomato sauce", 1),
            Document("partial", "experiment with sauce", 2),
        ])
        top = Bm25Retriever(idx).retrieve("quantum entanglement", k=3)
        assert top[0].doc_id == "hit"

    def test_idf_downweights_common_terms(self):
        idx = InvertedIndex()
        idx.index_all([Document(f"d{i}", "common filler words", 0)
                       for i in range(9)]
                      + [Document("rare", "common unicorn", 1)])
        scores = Bm25Retriever(idx).score_all("common unicorn")
        assert scores["rare"] > max(scores[f"d{i}"] for i in range(9))

    def test_scores_positive(self, corpus, index):
        retriever = Bm25Retriever(index)
        for query in list(corpus.queries.values())[:5]:
            assert all(hit.score > 0 for hit in retriever.retrieve(query))

    def test_k_limits_results(self, corpus, index):
        query = next(iter(corpus.queries.values()))
        assert len(Bm25Retriever(index).retrieve(query, k=3)) == 3

    def test_deterministic_tie_break(self, index):
        retriever = Bm25Retriever(index)
        query = "nonexistentterm " + index.doc_text("d0").split()[0]
        assert (retriever.retrieve(query, k=5)
                == retriever.retrieve(query, k=5))

    def test_empty_query_rejected(self, index):
        with pytest.raises(ValueError):
            Bm25Retriever(index).score_all("")

    def test_parameter_validation(self, index):
        with pytest.raises(ValueError):
            Bm25Retriever(index, k1=-1)
        with pytest.raises(ValueError):
            Bm25Retriever(index, b=2.0)

    def test_quality_on_synthetic_corpus(self, corpus, index):
        """BM25 must find topical documents (nDCG well above random)."""
        retriever = Bm25Retriever(index)
        ndcgs = [ndcg_at_k(retriever.retrieve(query, k=10),
                           corpus.qrels[query_id], k=10)
                 for query_id, query in corpus.queries.items()]
        assert mean_metric(ndcgs) > 0.5


class TestDense:
    def test_encoder_unit_norm(self):
        encoder = HashingSentenceEncoder()
        import numpy as np
        assert np.linalg.norm(encoder.encode("hello world")) == \
            pytest.approx(1.0)

    def test_identical_texts_identical_vectors(self):
        encoder = HashingSentenceEncoder()
        import numpy as np
        np.testing.assert_array_equal(encoder.encode("a b c"),
                                      encoder.encode("a b c"))

    def test_shared_vocabulary_is_closer(self):
        encoder = HashingSentenceEncoder()
        base = encoder.encode("socket memory encryption overhead")
        near = encoder.encode("memory encryption cost socket")
        far = encoder.encode("banana smoothie recipe blender")
        assert float(base @ near) > float(base @ far)

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            HashingSentenceEncoder().encode("   ")

    def test_retrieval_quality(self, corpus):
        retriever = DenseRetriever()
        retriever.index_all(corpus.documents)
        ndcgs = [ndcg_at_k(retriever.retrieve(query, k=10),
                           corpus.qrels[query_id], k=10)
                 for query_id, query in corpus.queries.items()]
        assert mean_metric(ndcgs) > 0.3

    def test_double_index_rejected(self, corpus):
        retriever = DenseRetriever()
        retriever.index_all(corpus.documents)
        with pytest.raises(ValueError):
            retriever.index_all(corpus.documents)

    def test_retrieve_before_index_rejected(self):
        with pytest.raises(ValueError):
            DenseRetriever().retrieve("query")


class TestRerank:
    def test_reranked_at_least_as_good_as_bm25(self, corpus, index):
        bm25 = Bm25Retriever(index)
        reranked = RerankedBm25Retriever(index)
        def quality(retriever):
            return mean_metric([
                ndcg_at_k(retriever.retrieve(query, k=10),
                          corpus.qrels[query_id], k=10)
                for query_id, query in corpus.queries.items()])
        assert quality(reranked) >= quality(bm25) - 0.05

    def test_candidates_scored(self, index):
        reranked = RerankedBm25Retriever(index, first_stage_k=37)
        assert reranked.candidates_scored() == 37

    def test_scorer_prefers_overlap(self):
        scorer = CrossEncoderScorer()
        query = "memory encryption overhead"
        assert (scorer.score(query, "memory encryption overhead analysis")
                > scorer.score(query, "pasta sauce recipe"))

    def test_scorer_empty_query(self):
        with pytest.raises(ValueError):
            CrossEncoderScorer().score("", "doc")

    def test_invalid_first_stage(self, index):
        with pytest.raises(ValueError):
            RerankedBm25Retriever(index, first_stage_k=0)


class TestRagMetrics:
    def test_perfect_ranking_ndcg_one(self):
        from repro.rag.bm25 import RankedDoc
        ranking = [RankedDoc("a", 3.0), RankedDoc("b", 2.0)]
        assert ndcg_at_k(ranking, {"a": 2, "b": 1}, k=2) == pytest.approx(1.0)

    def test_inverted_ranking_below_one(self):
        from repro.rag.bm25 import RankedDoc
        ranking = [RankedDoc("b", 3.0), RankedDoc("a", 2.0)]
        assert ndcg_at_k(ranking, {"a": 2, "b": 1}, k=2) < 1.0

    def test_no_relevant_docs_zero(self):
        from repro.rag.bm25 import RankedDoc
        assert ndcg_at_k([RankedDoc("a", 1.0)], {}, k=5) == 0.0

    def test_recall(self):
        from repro.rag.bm25 import RankedDoc
        ranking = [RankedDoc("a", 1.0), RankedDoc("x", 0.5)]
        assert recall_at_k(ranking, {"a": 1, "b": 1}, k=2) == 0.5

    @given(st.integers(min_value=1, max_value=20))
    def test_ndcg_bounded(self, k):
        from repro.rag.bm25 import RankedDoc
        ranking = [RankedDoc(f"d{i}", float(-i)) for i in range(10)]
        qrels = {f"d{i}": (i % 3) for i in range(10)}
        value = ndcg_at_k(ranking, qrels, k=k)
        assert 0.0 <= value <= 1.0
