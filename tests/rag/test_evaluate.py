"""RAG evaluation under TEE envelopes (Fig. 14 pipeline)."""

import pytest

from repro.core.experiment import cpu_deployment
from repro.rag.corpus import generate_corpus
from repro.rag.evaluate import (
    RAG_METHODS,
    build_retrievers,
    evaluate_pipeline,
    rag_tdx_overheads,
    time_query,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(num_docs=150, num_queries=6, seed=4)


@pytest.fixture(scope="module")
def retrievers(corpus):
    return build_retrievers(corpus)


@pytest.fixture(scope="module")
def tdx():
    return cpu_deployment("tdx", sockets_used=1)


@pytest.fixture(scope="module")
def baseline():
    return cpu_deployment("baremetal", sockets_used=1)


class TestTimeQuery:
    def test_all_methods_priced(self, retrievers, tdx, corpus):
        index = retrievers["_index"]
        query = next(iter(corpus.queries.values()))
        for method in RAG_METHODS:
            timing = time_query(method, index, query, tdx,
                                dense_docs=corpus.num_documents)
            assert timing.total_s > 0

    def test_rerank_slowest(self, retrievers, tdx, corpus):
        """50 cross-encoder passes dominate a single BM25 scan."""
        index = retrievers["_index"]
        query = next(iter(corpus.queries.values()))
        times = {method: time_query(method, index, query, tdx,
                                    dense_docs=corpus.num_documents).total_s
                 for method in RAG_METHODS}
        assert times["bm25-reranked"] > times["bm25"]
        assert times["bm25-reranked"] > times["sbert"]

    def test_unknown_method(self, retrievers, tdx):
        with pytest.raises(ValueError, match="unknown method"):
            time_query("colbert", retrievers["_index"], "q", tdx)


class TestEvaluatePipeline:
    def test_returns_quality_and_cost(self, corpus, retrievers, baseline):
        evaluation = evaluate_pipeline(corpus, "bm25", baseline,
                                       retrievers=retrievers)
        assert evaluation.queries == 6
        assert evaluation.mean_query_time_s > 0
        assert 0.0 <= evaluation.mean_ndcg_at_10 <= 1.0

    def test_tdx_slower_than_baseline(self, corpus, retrievers, baseline,
                                      tdx):
        for method in RAG_METHODS:
            base = evaluate_pipeline(corpus, method, baseline,
                                     retrievers=retrievers)
            secure = evaluate_pipeline(corpus, method, tdx,
                                       retrievers=retrievers, seed=99)
            assert secure.mean_query_time_s > base.mean_query_time_s

    def test_quality_independent_of_backend(self, corpus, retrievers,
                                            baseline, tdx):
        """TEEs change time, never rankings."""
        base = evaluate_pipeline(corpus, "sbert", baseline,
                                 retrievers=retrievers)
        secure = evaluate_pipeline(corpus, "sbert", tdx,
                                   retrievers=retrievers)
        assert base.mean_ndcg_at_10 == secure.mean_ndcg_at_10


class TestFig14Band:
    def test_overheads_in_llm_like_band(self):
        """Insight 12: RAG overheads land near LLM inference overheads."""
        overheads = rag_tdx_overheads(num_docs=200, num_queries=6, seed=7)
        assert set(overheads) == set(RAG_METHODS)
        for method, value in overheads.items():
            assert 0.02 < value < 0.14, (method, value)
