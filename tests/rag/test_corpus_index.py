"""Synthetic corpora and the inverted index."""

import pytest

from repro.rag.corpus import Document, generate_corpus
from repro.rag.inverted_index import POSTING_ENTRY_BYTES, InvertedIndex


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(num_docs=120, num_topics=6, num_queries=12,
                           seed=0)


class TestCorpus:
    def test_sizes(self, corpus):
        assert corpus.num_documents == 120
        assert len(corpus.queries) == 12

    def test_deterministic(self):
        a = generate_corpus(num_docs=30, seed=5)
        b = generate_corpus(num_docs=30, seed=5)
        assert [d.text for d in a.documents] == [d.text for d in b.documents]

    def test_topics_round_robin(self, corpus):
        assert corpus.documents[0].topic == 0
        assert corpus.documents[6].topic == 0

    def test_qrels_point_to_same_topic(self, corpus):
        for query_id, grades in corpus.qrels.items():
            topic = int(query_id[1:]) % 6
            for doc_id in grades:
                assert corpus.document(doc_id).topic == topic

    def test_every_query_has_relevant_docs(self, corpus):
        assert all(grades for grades in corpus.qrels.values())

    def test_grades_in_range(self, corpus):
        grades = {g for q in corpus.qrels.values() for g in q.values()}
        assert grades <= {1, 2}

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            generate_corpus(num_docs=3, num_topics=10)

    def test_unknown_document(self, corpus):
        with pytest.raises(KeyError):
            corpus.document("d99999")


class TestInvertedIndex:
    @pytest.fixture
    def index(self):
        idx = InvertedIndex()
        idx.index_document(Document("a", "apple banana apple", 0))
        idx.index_document(Document("b", "banana cherry", 0))
        return idx

    def test_postings_with_frequencies(self, index):
        assert index.postings("apple") == [("a", 2)]
        assert sorted(index.postings("banana")) == [("a", 1), ("b", 1)]

    def test_document_frequency(self, index):
        assert index.document_frequency("banana") == 2
        assert index.document_frequency("missing") == 0

    def test_lengths(self, index):
        assert index.doc_length("a") == 3
        assert index.average_doc_length == pytest.approx(2.5)

    def test_doc_text_stored(self, index):
        assert index.doc_text("b") == "banana cherry"

    def test_duplicate_rejected(self, index):
        with pytest.raises(KeyError):
            index.index_document(Document("a", "again", 0))

    def test_empty_index_average_raises(self):
        with pytest.raises(ValueError):
            InvertedIndex().average_doc_length

    def test_scan_cost_accounting(self, index):
        cost = index.scan_cost(["banana", "apple"])
        assert cost.postings_scanned == 3
        assert cost.bytes_touched == 3 * POSTING_ENTRY_BYTES
        assert cost.score_ops > 0

    def test_vocabulary_size(self, index):
        assert index.vocabulary_size == 3
