"""End-to-end RAG + generation service."""

import pytest

from repro.core.experiment import cpu_deployment
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16
from repro.rag.corpus import generate_corpus
from repro.rag.pipeline import RagService


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(num_docs=150, num_queries=6, seed=11)


@pytest.fixture(scope="module")
def service(corpus):
    return RagService(corpus, cpu_deployment("tdx", sockets_used=1),
                      LLAMA2_7B, BFLOAT16, output_tokens=32)


class TestRagService:
    def test_answer_structure(self, service, corpus):
        query = next(iter(corpus.queries.values()))
        answer = service.answer(query)
        assert len(answer.retrieved) == 3
        assert answer.prompt_tokens > len(query.split())
        assert answer.generation_s > answer.retrieval_s
        assert 0.0 <= answer.retrieval_fraction < 0.5

    def test_prompt_grows_with_top_k(self, corpus):
        query = next(iter(corpus.queries.values()))
        deployment = cpu_deployment("tdx", sockets_used=1)
        small = RagService(corpus, deployment, LLAMA2_7B, BFLOAT16,
                           top_k=1, output_tokens=16).answer(query)
        big = RagService(corpus, deployment, LLAMA2_7B, BFLOAT16,
                         top_k=5, output_tokens=16).answer(query)
        assert big.prompt_tokens > small.prompt_tokens
        assert big.generation_s > small.generation_s

    def test_retrieved_docs_are_topical(self, service, corpus):
        query_id, query = next(iter(sorted(corpus.queries.items())))
        answer = service.answer(query)
        relevant = corpus.qrels[query_id]
        hits = sum(1 for doc in answer.retrieved if doc.doc_id in relevant)
        assert hits >= 2  # at least 2 of top-3 on topic

    def test_tee_overhead_on_whole_pipeline(self, corpus):
        query = next(iter(corpus.queries.values()))
        base = RagService(corpus, cpu_deployment("baremetal", sockets_used=1),
                          LLAMA2_7B, BFLOAT16, output_tokens=32).answer(query)
        tdx = RagService(corpus, cpu_deployment("tdx", sockets_used=1),
                         LLAMA2_7B, BFLOAT16, output_tokens=32).answer(query)
        overhead = tdx.total_s / base.total_s - 1
        assert 0.02 < overhead < 0.15

    def test_empty_query_rejected(self, service):
        with pytest.raises(ValueError, match="empty"):
            service.answer("  ")

    def test_unknown_retriever(self, corpus):
        with pytest.raises(ValueError, match="unknown retriever"):
            RagService(corpus, cpu_deployment("tdx", sockets_used=1),
                       LLAMA2_7B, BFLOAT16, retriever="splade")

    def test_invalid_params(self, corpus):
        deployment = cpu_deployment("tdx", sockets_used=1)
        with pytest.raises(ValueError):
            RagService(corpus, deployment, LLAMA2_7B, BFLOAT16, top_k=0)
        with pytest.raises(ValueError):
            RagService(corpus, deployment, LLAMA2_7B, BFLOAT16,
                       output_tokens=0)
