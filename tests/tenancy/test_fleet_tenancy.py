"""Fleet-level tenancy: spec identity, counters, shed parity, inflation."""

import pytest

from repro.faults import DegradationPolicy, RetryPolicy, mtbf_schedule
from repro.fleet import fixed_fleet, replica_spec
from repro.serving import TenancyConfig
from repro.state.errors import StateIntegrityError
from repro.tenancy import (
    TenantPopulation,
    TenantSpec,
    noisy_neighbor_inflation,
    run_tenant_fleet,
    tenant_breakdown,
)


def population(seed=7):
    return TenantPopulation((
        TenantSpec(tenant_id=0, name="a", requests=14, rate_per_s=2.0,
                   arrival="mmpp", mean_prompt=192, weight=4.0, priority=0,
                   prefix_tokens=48),
        TenantSpec(tenant_id=1, name="b", requests=8, rate_per_s=1.2,
                   weight=1.0, priority=2),
    ), seed=seed)


class TestSpecIdentity:
    def test_fingerprint_tenancy_key_only_when_armed(self):
        plain = replica_spec("tdx")
        armed = replica_spec(
            "tdx", tenancy=TenancyConfig(admission="wfq"))
        fleet = fixed_fleet(plain, 1)
        assert "tenancy" not in fleet.replicas[0].spec_fingerprint()
        fleet = fixed_fleet(armed, 1)
        assert (fleet.replicas[0].spec_fingerprint()["tenancy"]["admission"]
                == "wfq")

    def test_restore_refuses_tenancy_mismatch(self):
        armed = replica_spec("tdx", tenancy=TenancyConfig(admission="wfq"))
        fleet = fixed_fleet(armed, 1)
        snapshot = fleet.to_state()
        other = fixed_fleet(replica_spec("tdx"), 1)
        with pytest.raises(StateIntegrityError, match="different spec"):
            other.from_state(snapshot)


class TestReportCounters:
    def test_replica_usage_carries_prefix_counters(self):
        report = run_tenant_fleet(population(), kind="tdx", count=2,
                                  engine="event", admission="fcfs",
                                  kv_isolation="shared-prefix",
                                  max_batch=8, kv_capacity_tokens=16384)
        assert report.prefix_misses == 2  # tenant 0 pins on each replica
        assert report.prefix_hits > 0
        rows = [u.to_dict() for u in report.fleet.replicas]
        assert all("prefix_hits" in row for row in rows)

    def test_breakdown_partitions_requests_and_bill(self):
        pop = population()
        report = run_tenant_fleet(pop, kind="tdx", count=2,
                                  engine="stepped", admission="wfq",
                                  max_batch=8, kv_capacity_tokens=16384)
        assert sum(u.requests for u in report.tenants) == pop.total_requests
        assert report.total_bill_cents == round(
            report.fleet.cost_usd * 100)


class TestShedPriorityParity:
    def test_shed_ledger_identical_between_engines(self):
        pop = population()
        spec = replica_spec(
            "tdx", max_batch=8, kv_capacity_tokens=16384,
            tenancy=pop.tenancy_config(admission="fcfs"))
        kwargs = {
            "faults": mtbf_schedule([0, 1], mtbf_s=1.5, horizon_s=60.0,
                                    seed=9),
            "retry_policy": RetryPolicy(timeout_s=8.0, max_attempts=2,
                                        seed=9),
            "degradation": DegradationPolicy(mode="shed", max_hold_s=1.0),
        }
        stepped = fixed_fleet(spec, 2, engine="stepped",
                              **kwargs).run(pop.stream())
        event = fixed_fleet(spec, 2, engine="event",
                            **kwargs).run(pop.table())
        ledger = [(s.request.request_id, s.request.priority, s.time_s,
                   s.reason, s.attempts) for s in stepped.shed]
        twin = [(s.request.request_id, s.request.priority, s.time_s,
                 s.reason, s.attempts) for s in event.shed]
        assert ledger == twin
        assert ledger, "regime shed nothing; test is vacuous"
        # Per-tenant splits agree too.
        assert (tenant_breakdown(stepped, pop).to_dict()
                == tenant_breakdown(event, pop).to_dict())


class TestNoisyNeighbor:
    def test_inflation_covers_every_tenant(self):
        inflation = noisy_neighbor_inflation(
            population(), kind="tdx", count=1, admission="fcfs",
            max_batch=4, kv_capacity_tokens=8192)
        assert set(inflation) == {0, 1}
        assert all(value is None or value > 0
                   for value in inflation.values())
        # The shared run can only be as good as solo for the light
        # tenant sharing with a heavier neighbor.
        assert inflation[1] is not None and inflation[1] >= 1.0
