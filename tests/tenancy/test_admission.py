"""Serving-layer tenancy: WFQ ordering, KV isolation, config checks."""

import json

import pytest

from repro.core.experiment import cpu_deployment
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16
from repro.serving import (
    ColumnarScheduler,
    ContinuousBatchingScheduler,
    ServeRequest,
    TenancyConfig,
)


def make_scheduler(cls=ContinuousBatchingScheduler, tenancy=None,
                   kv_tokens=4096, max_batch=4, lookahead=0):
    return cls(cpu_deployment("tdx", sockets_used=1), LLAMA2_7B, BFLOAT16,
               kv_capacity_tokens=kv_tokens, max_batch=max_batch,
               admission_lookahead=lookahead, tenancy=tenancy)


def free_and_total_blocks(scheduler):
    """KV pool occupancy for either engine (object cache vs counter)."""
    if isinstance(scheduler, ColumnarScheduler):
        return scheduler._free_blocks, scheduler.num_blocks
    return scheduler.cache.free_blocks, scheduler.cache.num_blocks


def request(rid, arrival, prompt=128, output=32, tenant=0):
    return ServeRequest(request_id=rid, arrival_s=arrival,
                        prompt_tokens=prompt, output_tokens=output,
                        tenant_id=tenant)


class TestConfigValidation:
    def test_defaults_are_fcfs_shared(self):
        config = TenancyConfig()
        assert config.admission == "fcfs"
        assert config.kv_isolation == "shared"
        assert config.weight_of(99) == 1.0

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="admission"):
            TenancyConfig(admission="lottery")
        with pytest.raises(ValueError, match="kv_isolation"):
            TenancyConfig(kv_isolation="banked")
        with pytest.raises(ValueError, match="duplicate"):
            TenancyConfig(weights=((0, 1.0), (0, 2.0)))
        with pytest.raises(ValueError, match="positive"):
            TenancyConfig(weights=((0, 0.0),))
        with pytest.raises(ValueError, match="requires partition_shares"):
            TenancyConfig(kv_isolation="partition")
        with pytest.raises(ValueError, match="sum"):
            TenancyConfig(kv_isolation="partition",
                          partition_shares=((0, 0.7), (1, 0.6)))

    def test_partition_budgets_conserve_blocks(self):
        config = TenancyConfig(kv_isolation="partition",
                               partition_shares=((0, 1 / 3), (1, 1 / 3),
                                                 (2, 1 / 3)))
        budgets = config.partition_budgets(100)
        assert sum(budgets.values()) <= 100
        assert min(budgets.values()) >= 33

    def test_state_round_trip(self):
        config = TenancyConfig(admission="wfq", weights=((0, 2.5),),
                               kv_isolation="shared-prefix",
                               prefix_tokens=((0, 64),))
        payload = json.loads(json.dumps(config.to_state()))
        assert TenancyConfig.from_state(payload) == config


class TestWfqOrdering:
    def test_heavier_weight_admitted_first(self):
        """Two same-size backlogged requests: the heavier tenant's tag
        is smaller, so it is admitted ahead of arrival order."""
        tenancy = TenancyConfig(admission="wfq",
                                weights=((0, 1.0), (1, 10.0)))
        scheduler = make_scheduler(tenancy=tenancy, max_batch=1)
        report = scheduler.run([
            request(0, 0.0, tenant=0),
            request(1, 0.0, tenant=0),   # queued behind request 0
            request(2, 0.01, tenant=1),  # heavier: overtakes request 1
        ])
        first = {o.request.request_id: o.first_token_s
                 for o in report.outcomes}
        assert first[2] < first[1]

    def test_fcfs_when_unarmed(self):
        scheduler = make_scheduler(max_batch=1)
        report = scheduler.run([request(0, 0.0), request(1, 0.0),
                                request(2, 0.01)])
        first = {o.request.request_id: o.first_token_s
                 for o in report.outcomes}
        assert first[1] < first[2]

    @pytest.mark.parametrize("cls", [ContinuousBatchingScheduler,
                                     ColumnarScheduler])
    def test_negative_tenant_rejected(self, cls):
        with pytest.raises(ValueError, match="tenant"):
            request(0, 0.0, tenant=-1)


class TestKvIsolation:
    def test_partition_blocks_unknown_tenant(self):
        tenancy = TenancyConfig(kv_isolation="partition",
                                partition_shares=((0, 1.0),))
        scheduler = make_scheduler(tenancy=tenancy)
        with pytest.raises(ValueError, match="tenant"):
            scheduler.run([request(0, 0.0, tenant=7)])

    def test_partition_caps_tenant(self):
        """A tenant can never exceed its worst-case block budget."""
        tenancy = TenancyConfig(kv_isolation="partition",
                                partition_shares=((0, 0.25), (1, 0.75)))
        scheduler = make_scheduler(tenancy=tenancy, kv_tokens=2048)
        # Tenant 0's budget is 32 blocks = 512 tokens worst case.
        with pytest.raises(ValueError, match="partition holds"):
            scheduler.run([request(0, 0.0, prompt=600, output=64, tenant=0)])

    @pytest.mark.parametrize("cls", [ContinuousBatchingScheduler,
                                     ColumnarScheduler])
    def test_partition_never_preempts(self, cls):
        tenancy = TenancyConfig(kv_isolation="partition",
                                partition_shares=((0, 0.5), (1, 0.5)))
        scheduler = make_scheduler(cls, tenancy=tenancy, kv_tokens=2048,
                                   max_batch=4)
        requests = [request(i, 0.05 * i, prompt=120, output=60, tenant=i % 2)
                    for i in range(12)]
        report = scheduler.run(requests)
        assert len(report.outcomes) == 12
        assert scheduler.preemptions == 0

    @pytest.mark.parametrize("cls", [ContinuousBatchingScheduler,
                                     ColumnarScheduler])
    def test_shared_prefix_hits_and_misses(self, cls):
        tenancy = TenancyConfig(kv_isolation="shared-prefix",
                                prefix_tokens=((0, 64),))
        scheduler = make_scheduler(cls, tenancy=tenancy)
        scheduler.run([request(i, 0.1 * i, tenant=0) for i in range(6)])
        assert scheduler.prefix_misses == 1  # first request pins
        assert scheduler.prefix_hits == 5
        # The pin stays resident after the run (4 blocks for 64 tokens);
        # evacuation returns the pool whole.
        free, total = free_and_total_blocks(scheduler)
        assert free == total - 4
        scheduler.evacuate()
        free, total = free_and_total_blocks(scheduler)
        assert free == total

    def test_shared_prefix_unconfigured_tenant_plain(self):
        tenancy = TenancyConfig(kv_isolation="shared-prefix",
                                prefix_tokens=((0, 64),))
        scheduler = make_scheduler(tenancy=tenancy)
        scheduler.run([request(i, 0.1 * i, tenant=1) for i in range(3)])
        assert scheduler.prefix_misses == 0
        assert scheduler.prefix_hits == 0


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("cls", [ContinuousBatchingScheduler,
                                     ColumnarScheduler])
    def test_wfq_prefix_snapshot_mid_run(self, cls):
        tenancy = TenancyConfig(admission="wfq",
                                weights=((0, 3.0), (1, 1.0)),
                                kv_isolation="shared-prefix",
                                prefix_tokens=((0, 48),))
        requests = [request(i, 0.2 * i, prompt=100 + 7 * i, output=24,
                            tenant=i % 2) for i in range(10)]

        baseline = make_scheduler(cls, tenancy=tenancy, max_batch=2)
        full = baseline.run(list(requests))

        live = make_scheduler(cls, tenancy=tenancy, max_batch=2)
        for item in sorted(requests,
                           key=lambda r: (r.arrival_s, r.request_id)):
            live.submit(item)
        live.step(until_s=1.0)
        payload = json.loads(json.dumps(live.to_state()))
        revived = make_scheduler(cls, tenancy=tenancy, max_batch=2)
        revived.from_state(payload)
        revived.step()
        resumed = revived.report()
        assert len(resumed.outcomes) == len(full.outcomes)
        for mine, theirs in zip(resumed.outcomes, full.outcomes):
            assert (mine.request, mine.first_token_s, mine.finish_s,
                    mine.preemptions) == (theirs.request,
                                          theirs.first_token_s,
                                          theirs.finish_s,
                                          theirs.preemptions)
        assert resumed.makespan_s == full.makespan_s

    def test_unarmed_snapshot_has_no_tenancy_key(self):
        scheduler = make_scheduler()
        scheduler.run([request(0, 0.0)])
        assert "tenancy" not in scheduler.to_state()
        assert "tenancy" not in scheduler.config_fingerprint()
