"""Tenant populations: twin parity, composability, and validation."""

import pytest

from repro.tenancy import TenantPopulation, TenantSpec, whale_mix


def small_population(seed=7):
    return TenantPopulation((
        TenantSpec(tenant_id=0, name="a", requests=12, rate_per_s=2.0,
                   arrival="mmpp", mean_prompt=192, weight=4.0, priority=0,
                   prefix_tokens=48),
        TenantSpec(tenant_id=1, name="b", requests=8, rate_per_s=1.5,
                   weight=2.0, priority=1),
        TenantSpec(tenant_id=2, name="c", requests=4, rate_per_s=0.5,
                   arrival="diurnal", priority=2),
    ), seed=seed)


class TestStreamTableTwins:
    def test_bit_identical(self):
        population = small_population()
        stream = population.stream()
        table = population.table()
        assert len(stream) == len(table) == population.total_requests
        for i, request in enumerate(stream):
            assert request == table.request(i)

    def test_global_ids_in_merge_order(self):
        stream = small_population().stream()
        assert [r.request_id for r in stream] == list(range(len(stream)))
        arrivals = [r.arrival_s for r in stream]
        assert arrivals == sorted(arrivals)

    def test_priority_follows_tenant(self):
        population = small_population()
        priorities = {s.tenant_id: s.priority for s in population.tenants}
        for request in population.stream():
            assert request.priority == priorities[request.tenant_id]

    def test_deterministic(self):
        assert small_population().stream() == small_population().stream()
        assert small_population(seed=8).stream() != \
            small_population(seed=7).stream()


class TestComposability:
    def test_tenant_stream_independent_of_neighbors(self):
        """Removing a tenant never perturbs the others' draws."""
        full = small_population()
        solo = full.solo(1)
        mine_full = [(r.arrival_s, r.prompt_tokens, r.output_tokens)
                     for r in full.stream() if r.tenant_id == 1]
        mine_solo = [(r.arrival_s, r.prompt_tokens, r.output_tokens)
                     for r in solo.stream()]
        assert mine_full == mine_solo

    def test_tenancy_config_carries_weights_and_prefixes(self):
        config = small_population().tenancy_config(
            admission="wfq", kv_isolation="shared-prefix")
        assert config.weight_of(0) == 4.0
        assert config.weight_of(2) == 1.0
        assert config.prefix_of(0) == 48
        assert config.prefix_of(1) == 0

    def test_partition_shares_weight_proportional(self):
        config = small_population().tenancy_config(kv_isolation="partition")
        shares = dict(config.partition_shares)
        assert shares[0] == pytest.approx(4.0 / 7.0)
        assert sum(shares.values()) == pytest.approx(1.0)


class TestValidation:
    def test_duplicate_tenant_ids_rejected(self):
        spec = TenantSpec(tenant_id=0, name="a", requests=2, rate_per_s=1.0)
        with pytest.raises(ValueError, match="duplicate tenant"):
            TenantPopulation((spec, spec))

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError, match="rate_per_s"):
            TenantSpec(tenant_id=0, name="a", requests=2, rate_per_s=0.0)
        with pytest.raises(ValueError, match="arrival"):
            TenantSpec(tenant_id=0, name="a", requests=2, rate_per_s=1.0,
                       arrival="weibull")
        with pytest.raises(ValueError, match="weight"):
            TenantSpec(tenant_id=0, name="a", requests=2, rate_per_s=1.0,
                       weight=-1.0)

    def test_whale_mix_shape(self):
        population = whale_mix(total_requests=100, seed=1)
        assert population.total_requests >= 90
        whale = population.spec_of(0)
        assert whale.name == "whale"
        assert whale.requests >= sum(
            s.requests for s in population.tenants
            if s.tenant_id not in (0, 1))
