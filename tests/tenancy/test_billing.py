"""Exact-partition billing: conservation, proportionality, edge cases."""

import pytest
from hypothesis import given, strategies as st

from repro.tenancy import partition_bill_cents


class TestPartition:
    def test_sums_to_total_cents(self):
        cents = partition_bill_cents(1.237, {0: 100, 1: 50, 2: 7})
        assert sum(cents.values()) == 124

    def test_proportional(self):
        cents = partition_bill_cents(10.0, {0: 750, 1: 250})
        assert cents == {0: 750, 1: 250}

    def test_zero_token_tenant_billed_zero(self):
        cents = partition_bill_cents(5.0, {0: 100, 1: 0})
        assert cents[1] == 0
        assert cents[0] == 500

    def test_idle_fleet_split_evenly(self):
        cents = partition_bill_cents(0.05, {0: 0, 1: 0, 2: 0})
        assert sum(cents.values()) == 5
        assert max(cents.values()) - min(cents.values()) <= 1

    def test_remainder_ties_to_lower_id(self):
        # Three equal tenants, 2 leftover cents: tenants 0 and 1 get them.
        cents = partition_bill_cents(0.05, {0: 1, 1: 1, 2: 1})
        assert cents == {0: 2, 1: 2, 2: 1}

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            partition_bill_cents(-1.0, {0: 1})
        with pytest.raises(ValueError):
            partition_bill_cents(1.0, {})
        with pytest.raises(ValueError):
            partition_bill_cents(1.0, {0: -5})

    @given(total=st.floats(min_value=0.0, max_value=1e5,
                           allow_nan=False, allow_infinity=False),
           tokens=st.dictionaries(st.integers(0, 20),
                                  st.integers(0, 10 ** 9),
                                  min_size=1, max_size=10))
    def test_always_partitions_exactly(self, total, tokens):
        cents = partition_bill_cents(total, tokens)
        assert sum(cents.values()) == round(total * 100)
        assert set(cents) == set(tokens)
        assert all(value >= 0 for value in cents.values())
