"""The shipped examples must keep running end to end."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> None:
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


class TestExamples:
    def test_confidential_service(self, capsys):
        run_example("confidential_service")
        out = capsys.readouterr().out
        assert "attested:    True" in out
        assert "PermissionError" in out  # failure path demonstrated

    def test_quickstart(self, capsys):
        run_example("quickstart")
        out = capsys.readouterr().out
        assert "Overheads vs bare metal" in out
        assert "cGPU" in out

    def test_tee_advisor(self, capsys):
        run_example("tee_advisor")
        out = capsys.readouterr().out
        assert "TDX — the H100's HBM is unencrypted" in out
        assert "cGPU — compute intensity is high enough" in out

    @pytest.mark.parametrize("name,marker", [
        ("secure_rag", "Insight 12"),
        ("capacity_planner", "Recommendation"),
        ("serving_simulator", "preemptions"),
        ("roofline_explorer", "Reading the table"),
    ])
    def test_remaining_examples(self, capsys, name, marker):
        run_example(name)
        assert marker in capsys.readouterr().out
