"""Cross-cutting consistency between independent code paths."""

import pytest

from repro.core.experiment import Experiment, cpu_deployment
from repro.core.metrics import throughput_from_latencies
from repro.engine.placement import Workload
from repro.engine.simulator import simulate_generation
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16


@pytest.fixture(scope="module")
def workload():
    return Workload(LLAMA2_7B, BFLOAT16, batch_size=4, input_tokens=256,
                    output_tokens=32)


class TestMetricIdentities:
    def test_throughput_latency_identity(self, workload):
        """decode throughput == user tokens / decode time by definition,
        and matches batch/mean-latency within noise."""
        result = simulate_generation(workload, cpu_deployment(
            "tdx", sockets_used=1))
        identity = workload.user_tokens / result.decode_time_s
        assert result.decode_throughput_tok_s == pytest.approx(identity)
        from_samples = throughput_from_latencies(result.latency_samples_s,
                                                 workload.batch_size)
        assert from_samples == pytest.approx(result.decode_throughput_tok_s,
                                             rel=0.10)

    def test_total_time_decomposition(self, workload):
        result = simulate_generation(workload, cpu_deployment(
            "baremetal", sockets_used=1))
        assert result.total_time_s == pytest.approx(
            result.prefill_s + result.decode_clean_s.sum())


class TestPathEquivalence:
    def test_experiment_equals_direct_simulation(self, workload):
        """Experiment.run() must produce exactly what a direct
        simulate_generation with the same seed produces."""
        deployment = cpu_deployment("tdx", sockets_used=1)
        outcome = Experiment(
            name="equiv", workload=workload,
            deployments={"baremetal": cpu_deployment("baremetal",
                                                     sockets_used=1),
                         "tdx": deployment},
            seed=5).run()
        direct = simulate_generation(workload, deployment, seed=6)
        via_experiment = outcome.results["tdx"]
        assert via_experiment.decode_time_s == pytest.approx(
            direct.decode_time_s)
        assert via_experiment.prefill_s == pytest.approx(direct.prefill_s)

    def test_clean_times_backend_independent_of_seed(self, workload):
        deployment = cpu_deployment("sgx", sockets_used=1)
        a = simulate_generation(workload, deployment, seed=1)
        b = simulate_generation(workload, deployment, seed=99)
        assert a.decode_time_s == b.decode_time_s


class TestDtypeConsistency:
    def test_int8_weight_traffic_halves_decode_time_when_memory_bound(self):
        from repro.llm.datatypes import INT8
        base = Workload(LLAMA2_7B, BFLOAT16, batch_size=1, input_tokens=128,
                        output_tokens=8)
        deployment = cpu_deployment("baremetal", sockets_used=1)
        bf16 = simulate_generation(base, deployment)
        int8 = simulate_generation(base.with_(dtype=INT8), deployment)
        ratio = bf16.next_token_latency_s / int8.next_token_latency_s
        assert 1.6 < ratio < 2.2

    def test_beam_multiplies_sequences_not_user_tokens(self):
        plain = Workload(LLAMA2_7B, BFLOAT16, batch_size=2, input_tokens=128,
                         output_tokens=8, beam_size=1)
        beamed = plain.with_(beam_size=4)
        deployment = cpu_deployment("baremetal", sockets_used=1)
        a = simulate_generation(plain, deployment)
        b = simulate_generation(beamed, deployment)
        # Same user tokens, more work -> lower user throughput.
        assert plain.user_tokens == beamed.user_tokens
        assert b.decode_throughput_tok_s < a.decode_throughput_tok_s
