"""Fast regression versions of the paper's headline quantitative bands.

The full sweeps live in benchmarks/; these tests pin the calibration so
that a refactor cannot silently move the reproduction out of band.
Workloads are shortened (fewer output tokens) relative to the paper's
1024/128 runs, which shifts overheads by well under a point.
"""

import pytest

from repro.core.experiment import cpu_deployment, gpu_deployment
from repro.core.overhead import latency_overhead, throughput_overhead
from repro.engine.placement import Workload
from repro.engine.simulator import simulate_generation
from repro.hardware.cpu import EMR1
from repro.llm.config import LLAMA2_7B, LLAMA2_70B, VALIDATION_MODELS
from repro.llm.datatypes import BFLOAT16, INT8
from repro.memsim.pages import HugepagePolicy


@pytest.fixture(scope="module")
def fig4():
    """Single-socket EMR1 runs for both paper workloads."""
    throughput_workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=6,
                                   input_tokens=1024, output_tokens=32,
                                   beam_size=4)
    latency_workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=1,
                                input_tokens=1024, output_tokens=32)
    results = {}
    for backend in ("baremetal", "vm", "sgx", "tdx"):
        deployment = cpu_deployment(backend, cpu=EMR1, sockets_used=1)
        results[backend] = (
            simulate_generation(throughput_workload, deployment),
            simulate_generation(latency_workload, deployment),
        )
    return results


class TestFig4SingleSocket:
    def test_sgx_band(self, fig4):
        """Paper: Gramine-SGX overhead 4.80-6.15%."""
        overhead = throughput_overhead(fig4["sgx"][0], fig4["baremetal"][0])
        assert 0.035 <= overhead <= 0.075

    def test_tdx_band(self, fig4):
        """Paper: TDX overhead 5.51-10.68%."""
        overhead = throughput_overhead(fig4["tdx"][0], fig4["baremetal"][0])
        assert 0.055 <= overhead <= 0.11

    def test_vm_band(self, fig4):
        """Paper: raw virtualization costs 1.82-5.38%."""
        overhead = throughput_overhead(fig4["vm"][0], fig4["baremetal"][0])
        assert 0.018 <= overhead <= 0.054

    def test_tdx_over_vm_band(self, fig4):
        """Paper: TDX adds 3.02-7.01% over the VM."""
        overhead = throughput_overhead(fig4["tdx"][0], fig4["vm"][0])
        assert 0.030 <= overhead <= 0.071

    def test_ordering(self, fig4):
        tputs = {name: runs[0].decode_throughput_tok_s
                 for name, runs in fig4.items()}
        assert (tputs["baremetal"] > tputs["vm"] > tputs["sgx"]
                > tputs["tdx"])

    def test_latency_meets_reading_speed(self, fig4):
        """All systems stay under the 200 ms/word service level."""
        from repro.core.metrics import latency_stats
        for _, latency_run in fig4.values():
            stats = latency_stats(latency_run.latency_samples_s)
            assert stats.meets_reading_speed

    def test_int8_halves_latency(self):
        """Paper: int8 gives similar throughput, almost half the latency."""
        results = {}
        for dtype in (BFLOAT16, INT8):
            workload = Workload(LLAMA2_7B, dtype, batch_size=1,
                                input_tokens=1024, output_tokens=16)
            results[dtype.name] = simulate_generation(
                workload, cpu_deployment("tdx", cpu=EMR1, sockets_used=1))
        ratio = (results["bf16"].next_token_latency_s
                 / results["int8"].next_token_latency_s)
        assert 1.6 < ratio < 2.3


class TestFig5NumaBinding:
    def test_70b_ordering_and_sla(self):
        """VM-bound < TDX < VM-unbound; 200 ms SLA no longer met."""
        workload = Workload(LLAMA2_70B, BFLOAT16, batch_size=1,
                            input_tokens=256, output_tokens=8)
        latencies = {}
        for label, backend in (("vm-b", "vm"), ("vm-nb", "vm-unbound"),
                               ("tdx", "tdx")):
            result = simulate_generation(workload, cpu_deployment(
                backend, cpu=EMR1, sockets_used=2))
            latencies[label] = result.next_token_latency_s
        assert latencies["vm-b"] < latencies["tdx"] < latencies["vm-nb"]
        assert latencies["vm-b"] > 0.200


class TestFig6Hugepages:
    @pytest.fixture(scope="class")
    def two_socket(self):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=6,
                            input_tokens=1024, output_tokens=32, beam_size=4)
        def run(backend, pages):
            return simulate_generation(workload, cpu_deployment(
                backend, cpu=EMR1, sockets_used=2, hugepages=pages))
        return {
            "base": run("baremetal", HugepagePolicy.RESERVED_1G),
            "vm_fh": run("vm", HugepagePolicy.RESERVED_1G),
            "vm_th": run("vm", HugepagePolicy.TRANSPARENT_2M),
            "tdx": run("tdx", HugepagePolicy.RESERVED_1G),
        }

    def test_tdx_two_socket_band(self, two_socket):
        """Paper: TDX two-socket overhead 12.11-23.81%."""
        overhead = throughput_overhead(two_socket["tdx"], two_socket["base"])
        assert 0.12 <= overhead <= 0.24

    def test_tdx_over_vm_th_band(self, two_socket):
        """Paper: TDX over VM-TH stays at 4-10%."""
        overhead = throughput_overhead(two_socket["tdx"],
                                       two_socket["vm_th"])
        assert 0.04 <= overhead <= 0.105

    def test_thp_cost_band(self, two_socket):
        """Paper: missing 1 GB hugepages cost 3.19-5.20%."""
        overhead = throughput_overhead(two_socket["vm_th"],
                                       two_socket["vm_fh"])
        assert 0.030 <= overhead <= 0.055

    def test_sgx_two_socket_blows_up(self):
        """Paper: SGX multi-socket overheads reach ~230%."""
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=6,
                            input_tokens=1024, output_tokens=16, beam_size=4)
        base = simulate_generation(workload, cpu_deployment(
            "baremetal", cpu=EMR1, sockets_used=2,
            hugepages=HugepagePolicy.RESERVED_1G))
        sgx = simulate_generation(workload, cpu_deployment(
            "sgx", cpu=EMR1, sockets_used=2))
        assert throughput_overhead(sgx, base) > 1.0


class TestFig9BatchScaling:
    def test_tdx_overhead_drops_when_compute_bound(self):
        overheads = {}
        for batch in (1, 64, 512):
            workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=batch,
                                input_tokens=128, output_tokens=16)
            base = simulate_generation(workload, cpu_deployment(
                "baremetal", sockets_used=1))
            tdx = simulate_generation(workload, cpu_deployment(
                "tdx", sockets_used=1))
            overheads[batch] = throughput_overhead(tdx, base)
        assert overheads[1] > overheads[64] >= overheads[512]
        assert 0.07 <= overheads[1] <= 0.11   # paper: 7-10% small-batch
        assert 0.03 <= overheads[512] <= 0.07  # paper: 4-7% saturated

    def test_int8_saturation_band(self):
        """Paper: int8 overheads drop from 9-11% to <=6% by batch 64."""
        overheads = {}
        for batch in (1, 64):
            workload = Workload(LLAMA2_7B, INT8, batch_size=batch,
                                input_tokens=128, output_tokens=16)
            base = simulate_generation(workload, cpu_deployment(
                "baremetal", sockets_used=1))
            tdx = simulate_generation(workload, cpu_deployment(
                "tdx", sockets_used=1))
            overheads[batch] = throughput_overhead(tdx, base)
        assert 0.08 <= overheads[1] <= 0.115
        assert overheads[64] <= 0.065


class TestFig11Cgpu:
    def test_band_and_decay(self):
        """Paper: cGPU overheads between ~7.5% and ~4.4%, shrinking with
        batch and input size."""
        overheads = {}
        for batch, input_len in ((1, 128), (16, 512), (64, 2048)):
            workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=batch,
                                input_tokens=input_len, output_tokens=32)
            gpu = simulate_generation(workload,
                                      gpu_deployment(confidential=False))
            cgpu = simulate_generation(workload,
                                       gpu_deployment(confidential=True))
            overheads[(batch, input_len)] = throughput_overhead(
                cgpu, gpu, include_prefill=True)
        assert 0.05 <= overheads[(1, 128)] <= 0.10
        assert overheads[(1, 128)] > overheads[(16, 512)] \
            > overheads[(64, 2048)]
        assert overheads[(64, 2048)] >= 0.030


class TestCrossModelValidation:
    def test_all_five_models_in_band(self):
        """Paper §III-C: Llama3/GPT-J/Falcon/Baichuan2/Qwen show
        3.1-13.1% TDX overheads."""
        for model in VALIDATION_MODELS:
            workload = Workload(model, BFLOAT16, batch_size=1,
                                input_tokens=512, output_tokens=16)
            base = simulate_generation(workload, cpu_deployment(
                "baremetal", sockets_used=1))
            tdx = simulate_generation(workload, cpu_deployment(
                "tdx", sockets_used=1))
            overhead = throughput_overhead(tdx, base)
            assert 0.031 <= overhead <= 0.131, model.name


class TestSncAblation:
    def test_snc_multiplies_tee_overhead(self):
        """Paper §IV-A: SNC raised overhead from ~5% to ~42% (>4x)."""
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=6,
                            input_tokens=512, output_tokens=16, beam_size=4)
        def overhead(clusters):
            base = simulate_generation(workload, cpu_deployment(
                "baremetal", sockets_used=1, snc_clusters=clusters))
            tdx = simulate_generation(workload, cpu_deployment(
                "tdx", sockets_used=1, snc_clusters=clusters))
            return throughput_overhead(tdx, base)
        assert overhead(2) > 3 * overhead(1)
        assert overhead(2) > 0.30


class TestInt8Fallback:
    def test_latency_catastrophe_two_sockets(self):
        """Paper: +1700% latency for int8 without AMX on two sockets."""
        workload = Workload(LLAMA2_7B, INT8, batch_size=1, input_tokens=128,
                            output_tokens=8)
        amx = simulate_generation(workload, cpu_deployment(
            "vm", sockets_used=2))
        fallback = simulate_generation(workload, cpu_deployment(
            "vm", sockets_used=2, amx_enabled=False))
        overhead = latency_overhead(fallback, amx, filtered=False)
        assert overhead > 9.0  # at least +900%

    def test_throughput_collapse_one_socket(self):
        """Paper reports +96%; our mechanistic model lands higher (the
        fp32-temporary inflation dominates) — assert 'unusable', >=90%."""
        workload = Workload(LLAMA2_7B, INT8, batch_size=64, input_tokens=128,
                            output_tokens=8)
        amx = simulate_generation(workload, cpu_deployment(
            "vm", sockets_used=1))
        fallback = simulate_generation(workload, cpu_deployment(
            "vm", sockets_used=1, amx_enabled=False))
        assert throughput_overhead(fallback, amx) > 0.9
