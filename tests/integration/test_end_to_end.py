"""End-to-end flows across subsystems."""


from repro.core.experiment import Experiment, cpu_deployment, gpu_deployment
from repro.core.pipeline import ConfidentialPipeline
from repro.core.summary import render_summary_table
from repro.cost.efficiency import cpu_cost_point, gpu_cost_point
from repro.cost.pricing import GCP_SPOT_US_EAST1
from repro.engine.placement import Workload
from repro.engine.simulator import simulate_generation
from repro.engine.trace import block_layer_summary, layer_overheads
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16
from repro.workloads.prompts import request_stream, synthetic_prompt


class TestFullServiceFlow:
    """Attest -> provision -> serve -> measure, the README scenario."""

    def test_healthcare_service(self):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=1,
                            input_tokens=128, output_tokens=16)
        pipeline = ConfidentialPipeline(
            cpu_deployment("tdx", sockets_used=1), workload)
        report = pipeline.provision()
        assert report.attested

        prompt = synthetic_prompt(30, domain="healthcare")
        response = pipeline.generate(prompt, max_new_tokens=5)
        assert len(response.text_tokens) == 5
        # The performance estimate must satisfy the reading-speed SLA.
        assert response.estimated_latency_ms < 200.0


class TestExperimentToSummaryFlow:
    def test_measured_bands_feed_table1(self):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=6,
                            input_tokens=512, output_tokens=16, beam_size=4)
        experiment = Experiment(
            name="tab1", workload=workload,
            deployments={
                "baremetal": cpu_deployment("baremetal", sockets_used=1),
                "sgx": cpu_deployment("sgx", sockets_used=1),
                "tdx": cpu_deployment("tdx", sockets_used=1),
            })
        outcome = experiment.run()
        sgx = outcome.overhead("sgx").throughput_overhead
        tdx = outcome.overhead("tdx").throughput_overhead
        table = render_summary_table(measured_bands={
            "sgx": (sgx, sgx), "tdx": (tdx, tdx)})
        assert f"~{sgx * 100:.0f}-{sgx * 100:.0f}%" in table


class TestTraceFlow:
    def test_fig7_pipeline(self):
        """Simulate -> trace -> per-layer breakdown -> TDX overheads."""
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=4,
                            input_tokens=128, output_tokens=8)
        traces = {}
        for backend in ("baremetal", "tdx"):
            result = simulate_generation(
                workload, cpu_deployment(backend, sockets_used=1),
                record_steps=True)
            traces[backend] = result.decode_trace()
        summary = block_layer_summary(traces["tdx"])
        overheads = layer_overheads(traces["tdx"], traces["baremetal"])
        # Attention is heavier than the layer norms in absolute time...
        assert (summary["self_attention"].total_duration_s
                > summary["input_layernorm"].total_duration_s)
        # ...and every layer shows a positive TDX overhead.
        assert min(overheads.values()) > 0


class TestCapacityFlow:
    def test_request_stream_costing(self):
        """Aggregate a request mix into a cost estimate (planner flow)."""
        requests = request_stream(20, mean_prompt=256, mean_output=64,
                                  seed=1)
        mean_in = sum(r.prompt_tokens for r in requests) // len(requests)
        mean_out = sum(r.output_tokens for r in requests) // len(requests)
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=4,
                            input_tokens=mean_in, output_tokens=mean_out)
        tdx = simulate_generation(workload, cpu_deployment(
            "tdx", sockets_used=1, cores_per_socket_used=16))
        cgpu = simulate_generation(workload, gpu_deployment())
        cpu_point = cpu_cost_point(tdx, vcpus=16, catalog=GCP_SPOT_US_EAST1)
        gpu_point = gpu_cost_point(cgpu, catalog=GCP_SPOT_US_EAST1)
        assert cpu_point.usd_per_mtok > 0 and gpu_point.usd_per_mtok > 0
        # Small-batch regime: CPU TEE should be the cheaper option.
        assert cpu_point.usd_per_mtok < gpu_point.usd_per_mtok
