"""Compute-engine selection and the int8 fallback detection."""


from repro.hardware.engines import (
    AMX_RATES,
    AVX512_RATES,
    CUDA_TENSOR_RATES,
    Engine,
    best_cpu_engine,
    is_fallback_path,
)
from repro.llm.datatypes import BFLOAT16, FLOAT32, INT8


class TestRates:
    def test_amx_int8_doubles_bf16(self):
        assert AMX_RATES.rate_for(INT8) == 2 * AMX_RATES.rate_for(BFLOAT16)

    def test_amx_has_no_fp32(self):
        assert not AMX_RATES.supports(FLOAT32)

    def test_avx_bf16_doubles_fp32(self):
        assert AVX512_RATES.rate_for(BFLOAT16) == 2 * AVX512_RATES.rate_for(FLOAT32)

    def test_avx_int8_is_a_slow_fallback(self):
        """IPEX ships no tuned AVX int8 kernels — the fallback must be
        slower than the bf16 path despite int8's narrower elements."""
        assert AVX512_RATES.rate_for(INT8) < AVX512_RATES.rate_for(BFLOAT16)

    def test_cuda_rates_ordered(self):
        assert (CUDA_TENSOR_RATES.rate_for(INT8)
                > CUDA_TENSOR_RATES.rate_for(BFLOAT16)
                > CUDA_TENSOR_RATES.rate_for(FLOAT32))


class TestSelection:
    def test_bf16_prefers_amx(self):
        engine, rate = best_cpu_engine(BFLOAT16, amx_enabled=True)
        assert engine is Engine.AMX
        assert rate == 1024.0

    def test_bf16_without_amx_uses_avx(self):
        engine, _ = best_cpu_engine(BFLOAT16, amx_enabled=False)
        assert engine is Engine.AVX512

    def test_fp32_always_avx(self):
        engine, _ = best_cpu_engine(FLOAT32, amx_enabled=True)
        assert engine is Engine.AVX512

    def test_int8_with_amx(self):
        engine, rate = best_cpu_engine(INT8, amx_enabled=True)
        assert engine is Engine.AMX
        assert rate == 2048.0


class TestFallback:
    def test_int8_no_amx_is_fallback(self):
        assert is_fallback_path(INT8, amx_enabled=False)

    def test_int8_with_amx_is_not(self):
        assert not is_fallback_path(INT8, amx_enabled=True)

    def test_bf16_never_fallback(self):
        assert not is_fallback_path(BFLOAT16, amx_enabled=False)
