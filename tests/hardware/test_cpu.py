"""CPU spec behaviour."""

import pytest

from repro.hardware.cpu import EMR1, EMR2, SPR, CpuSpec, cpu_by_name
from repro.memsim.pages import PAGE_1G, PAGE_2M, PAGE_4K


class TestTlbSpec:
    def test_entries_by_page_size(self):
        tlb = EMR1.tlb
        assert tlb.entries_for(PAGE_4K) == tlb.entries_4k
        assert tlb.entries_for(PAGE_2M) == tlb.entries_2m
        assert tlb.entries_for(PAGE_1G) == tlb.entries_1g

    def test_unknown_page_size(self):
        with pytest.raises(ValueError):
            EMR1.tlb.entries_for(8192)

    def test_reach_ordering(self):
        """Hugepages extend TLB reach (Insight 7's mechanism)."""
        tlb = EMR1.tlb
        assert (tlb.reach_bytes(PAGE_4K) < tlb.reach_bytes(PAGE_2M)
                < tlb.reach_bytes(PAGE_1G))


class TestSystems:
    def test_paper_core_counts(self):
        assert EMR1.cores_per_socket == 32 and EMR1.sockets == 2
        assert EMR2.cores_per_socket == 60 and EMR2.sockets == 2

    def test_paper_prices(self):
        assert EMR1.price_usd == 2130.0
        assert EMR2.price_usd == 10710.0

    def test_spr_is_slower_and_cheaper(self):
        assert SPR.mem_bw_per_socket < EMR2.mem_bw_per_socket
        assert SPR.clock_hz < EMR2.clock_hz
        assert SPR.price_usd < EMR2.price_usd

    def test_lookup(self):
        assert cpu_by_name("EMR2") is EMR2
        with pytest.raises(KeyError):
            cpu_by_name("GNR1")

    def test_total_cores(self):
        assert EMR2.total_cores == 120


class TestRates:
    def test_peak_flops_scales_with_cores(self):
        assert EMR2.peak_flops(1024, 60) == 60 * EMR2.peak_flops(1024, 1)

    def test_peak_flops_bounds(self):
        with pytest.raises(ValueError):
            EMR2.peak_flops(1024, 0)
        with pytest.raises(ValueError):
            EMR2.peak_flops(1024, EMR2.total_cores + 1)

    def test_mem_bw_bounds(self):
        assert EMR2.mem_bw(2) == 2 * EMR2.mem_bw_per_socket
        with pytest.raises(ValueError):
            EMR2.mem_bw(3)

    def test_with_sub_numa(self):
        snc = EMR2.with_sub_numa(2)
        assert snc.sub_numa_clusters == 2
        assert EMR2.sub_numa_clusters == 1  # original untouched

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            CpuSpec("bad", 0, 8, 2e9, 1e11, 1e11, 1e8, EMR1.tlb, 1e-8,
                    EMR1.upi, 1e10, 100.0)
