"""GPU specs and interconnects."""

import pytest

from repro.hardware.gpu import B100, H100_NVL, gpu_by_name
from repro.hardware.interconnect import (
    CONFIDENTIAL_GPU_ROUTED_BW,
    NONCONFIDENTIAL_GPU_ROUTED_BW,
    NVLINK4,
    PCIE_GEN5_X16,
    UPI_EMR,
)
from repro.llm.datatypes import BFLOAT16, FLOAT32


class TestGpuSpecs:
    def test_h100_nvl_memory_is_94gb(self):
        assert H100_NVL.hbm_bytes == 94e9

    def test_h100_security_gaps(self):
        """The paper's headline cGPU caveats: HBM and NVLink unprotected."""
        assert not H100_NVL.hbm_encrypted
        assert not H100_NVL.nvlink_protected

    def test_b100_fixes_them(self):
        assert B100.hbm_encrypted
        assert B100.nvlink_protected

    def test_peak_flops_order(self):
        assert H100_NVL.peak_flops(BFLOAT16) > H100_NVL.peak_flops(FLOAT32)

    def test_bf16_peak_near_spec(self):
        # ~432 Tflop/s modeled dense bf16 (conservative vs the ~990
        # datasheet number, which assumes boost clocks).
        peak = H100_NVL.peak_flops(BFLOAT16)
        assert 2e14 < peak < 1e15

    def test_lookup(self):
        assert gpu_by_name("H100-NVL") is H100_NVL
        with pytest.raises(KeyError):
            gpu_by_name("MI300")


class TestLinks:
    def test_transfer_time_includes_latency(self):
        assert PCIE_GEN5_X16.transfer_time(0) == PCIE_GEN5_X16.latency_s

    def test_transfer_scales_with_size(self):
        small = PCIE_GEN5_X16.transfer_time(1e6)
        large = PCIE_GEN5_X16.transfer_time(1e9)
        assert large > small

    def test_efficiency_bounds(self):
        with pytest.raises(ValueError):
            PCIE_GEN5_X16.transfer_time(1.0, efficiency=0.0)
        with pytest.raises(ValueError):
            PCIE_GEN5_X16.transfer_time(-1.0)

    def test_only_upi_is_tee_protected(self):
        """CPU socket links are transparently encrypted; PCIe/NVLink on
        H100 are not (§V-D3)."""
        assert UPI_EMR.encrypted_in_tee
        assert not NVLINK4.encrypted_in_tee
        assert not PCIE_GEN5_X16.encrypted_in_tee

    def test_confidential_routing_cap(self):
        """CC mode caps GPU-to-GPU traffic at ~3 GB/s vs ~40 GB/s."""
        assert CONFIDENTIAL_GPU_ROUTED_BW < NONCONFIDENTIAL_GPU_ROUTED_BW / 10
