"""Secure RAG: a full retrieval pipeline inside TDX (paper §VI).

Builds a BEIR-like corpus, indexes it in the Elasticsearch-style
inverted index, runs the three retrieval models (BM25, reranked BM25,
SBERT dense) end to end — real rankings with nDCG quality — and compares
per-query time on bare metal vs inside TDX.

Run:  python examples/secure_rag.py
"""

from repro import cpu_deployment
from repro.rag import (
    RAG_METHODS,
    build_retrievers,
    evaluate_pipeline,
    generate_corpus,
)


def main() -> None:
    print("Building a 1000-document BEIR-like corpus...")
    corpus = generate_corpus(num_docs=1000, num_topics=12, num_queries=30,
                             seed=7)
    retrievers = build_retrievers(corpus)
    index = retrievers["_index"]
    print(f"  {corpus.num_documents} docs, vocabulary "
          f"{index.vocabulary_size}, avg doc length "
          f"{index.average_doc_length:.0f} tokens, "
          f"{len(corpus.queries)} queries\n")

    baseline = cpu_deployment("baremetal", sockets_used=1)
    tdx = cpu_deployment("tdx", sockets_used=1)

    print(f"{'method':16s} {'nDCG@10':>8s} {'bare ms/q':>10s} "
          f"{'TDX ms/q':>10s} {'overhead':>9s}")
    for method in RAG_METHODS:
        base = evaluate_pipeline(corpus, method, baseline,
                                 retrievers=retrievers, seed=1)
        secure = evaluate_pipeline(corpus, method, tdx,
                                   retrievers=retrievers, seed=1001)
        overhead = secure.mean_query_time_s / base.mean_query_time_s - 1
        print(f"{method:16s} {base.mean_ndcg_at_10:8.3f} "
              f"{base.mean_query_time_s * 1e3:10.2f} "
              f"{secure.mean_query_time_s * 1e3:10.2f} "
              f"{overhead:+9.1%}")

    example_query = next(iter(corpus.queries.values()))
    hits = retrievers["bm25"].retrieve(example_query, k=3)
    print(f"\nExample query: '{example_query[:50]}...'")
    for hit in hits:
        print(f"  {hit.doc_id}: score {hit.score:.2f}")

    print("\nInsight 12: the entire RAG pipeline — database included — "
          "pays LLM-like\nsingle-digit TEE overheads, so confidential "
          "retrieval is practical today.")


if __name__ == "__main__":
    main()
