"""A complete confidential LLM service: attest, provision, serve.

Walks the full deployment flow the paper's setup implies:

1. generate the TEE configuration artifact (libvirt TDX domain + LUKS
   plan, or a Gramine manifest for SGX),
2. measure it and run remote attestation against a relying party,
3. receive the model key and decrypt the weights,
4. serve generations: real tokens from the reference transformer and
   per-request performance estimates for the production model.

Run:  python examples/confidential_service.py
"""

from repro import ConfidentialPipeline, Workload, cpu_deployment
from repro.llm import BFLOAT16, LLAMA2_7B
from repro.workloads import synthetic_prompt


def main() -> None:
    workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=1,
                        input_tokens=512, output_tokens=128)
    deployment = cpu_deployment("tdx", sockets_used=1)
    pipeline = ConfidentialPipeline(deployment, workload)

    print("1. Configuration artifact (TDX guest, excerpt):")
    config = pipeline.build_config()
    for line in config.libvirt_xml().splitlines()[:8]:
        print(f"   {line}")

    print("\n2. Remote attestation:")
    report = pipeline.provision()
    print(f"   measurement: {report.measurement[:32]}...")
    print(f"   platform:    {report.quote.platform_id}")
    print(f"   attested:    {report.attested} -> model key released, "
          "weights decrypted")

    print("\n3. Serving confidential requests:")
    for domain in ("healthcare", "finance"):
        prompt = synthetic_prompt(24, domain=domain, seed=1)
        response = pipeline.generate(prompt, max_new_tokens=8)
        print(f"   [{domain:10s}] generated {len(response.text_tokens)} "
              f"tokens; estimated production latency "
              f"{response.estimated_latency_ms:.0f} ms/token "
              f"({response.performance.decode_throughput_tok_s:.1f} tok/s)")

    print("\n4. Failure path: a tampered enclave never gets the key.")
    rogue = ConfidentialPipeline(deployment, workload)
    try:
        rogue.provision(expected_measurement="0" * 96)
    except PermissionError as error:
        print(f"   PermissionError: {error}")


if __name__ == "__main__":
    main()
