"""Quickstart: measure TEE overheads for Llama2-7B inference.

Reproduces the paper's headline result (Fig. 1): running a full LLM
inference pipeline inside a CPU TEE costs single-digit percent
throughput, far from the orders of magnitude of cryptographic
alternatives.

Run:  python examples/quickstart.py
"""

from repro import Workload, cpu_deployment, gpu_deployment, simulate_generation
from repro.core.metrics import latency_stats
from repro.core.overhead import compare, throughput_overhead
from repro.llm import BFLOAT16, LLAMA2_7B


def main() -> None:
    # The paper's throughput workload: 1024 input tokens, 128 output,
    # batch 6 with beam 4, bfloat16.
    workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=6,
                        input_tokens=1024, output_tokens=128, beam_size=4)

    print(f"Workload: {workload.model.name}, {workload.dtype.name}, "
          f"batch {workload.batch_size} x beam {workload.beam_size}, "
          f"{workload.input_tokens}/{workload.output_tokens} tokens\n")

    print("CPU TEEs (single-socket Emerald Rapids, IPEX + AMX):")
    results = {}
    for backend in ("baremetal", "vm", "sgx", "tdx"):
        deployment = cpu_deployment(backend, sockets_used=1)
        results[backend] = simulate_generation(workload, deployment)
        result = results[backend]
        stats = latency_stats(result.latency_samples_s)
        print(f"  {backend:10s} {result.decode_throughput_tok_s:7.1f} tok/s"
              f"   {stats.mean_s * 1e3:6.1f} ms/token"
              f"   (outliers filtered: {stats.outliers_removed:.2%})")

    print("\nOverheads vs bare metal:")
    for backend in ("vm", "sgx", "tdx"):
        report = compare(results[backend], results["baremetal"])
        tput, lat = report.as_percent()
        print(f"  {backend:10s} throughput +{tput:4.1f}%   latency +{lat:4.1f}%")

    print("\nGPU TEE (H100 NVL, confidential compute):")
    gpu_workload = workload.with_(beam_size=1)
    gpu = simulate_generation(gpu_workload, gpu_deployment(confidential=False))
    cgpu = simulate_generation(gpu_workload, gpu_deployment(confidential=True))
    overhead = throughput_overhead(cgpu, gpu, include_prefill=True)
    print(f"  raw GPU  {gpu.throughput_tok_s:8.1f} tok/s")
    print(f"  cGPU     {cgpu.throughput_tok_s:8.1f} tok/s  "
          f"(CC overhead +{100 * overhead:.1f}%)")

    print("\nConclusion: every TEE stays within single-digit-percent "
          "throughput overhead\n(the paper's Insight 4 and Insight 10).")


if __name__ == "__main__":
    main()
