"""Roofline explorer: the physics behind the paper's figures.

Prints, for every registered decoder model, the static quantities the
analysis keeps returning to — weight footprint, KV growth, decode
arithmetic intensity, the hard memory-bandwidth throughput ceiling on
CPU and GPU, and the batch size at which decode turns compute-bound.

Run:  python examples/roofline_explorer.py
"""

from repro.engine import calibration as cal
from repro.hardware import EMR2, H100_NVL
from repro.hardware.engines import AMX_RATES
from repro.llm import BFLOAT16, INT8, all_models
from repro.llm.analysis import (
    compute_bound_batch,
    memory_floor_tok_s,
    summarize,
)


def main() -> None:
    cpu_bw = EMR2.mem_bw_per_socket * cal.FRAMEWORK_MEM_EFF["ipex"]
    cpu_flops = (AMX_RATES.rate_for(BFLOAT16) * EMR2.clock_hz
                 * EMR2.cores_per_socket * cal.FRAMEWORK_MFU[("ipex", "amx")])
    gpu_bw = H100_NVL.hbm_bw * cal.FRAMEWORK_MEM_EFF["vllm-gpu"]

    print(f"{'model':14s} {'dtype':5s} {'weights':>8s} {'KV/tok':>8s} "
          f"{'AI(bs1)':>8s} {'CPU ceil':>9s} {'GPU ceil':>9s} "
          f"{'CB batch':>9s}")
    for model in all_models():
        if model.encoder_only:
            continue
        for dtype in (BFLOAT16, INT8):
            summary = summarize(model, dtype)
            cpu_floor = memory_floor_tok_s(model, dtype, cpu_bw)
            gpu_floor = memory_floor_tok_s(model, dtype, gpu_bw)
            crossover = compute_bound_batch(model, dtype, cpu_flops, cpu_bw,
                                            context_len=192)
            print(f"{summary.model:14s} {summary.dtype:5s} "
                  f"{summary.weight_gb:6.1f}GB "
                  f"{summary.kv_bytes_per_token / 1024:6.0f}KB "
                  f"{summary.decode_intensity:8.2f} "
                  f"{cpu_floor:7.1f}/s {gpu_floor:7.1f}/s "
                  f"{str(crossover or '-'):>9s}")

    print("\nReading the table:")
    print("  - AI(bs1) ~ 1 flop/byte: batch-1 decode is memory-bound "
          "everywhere, so TEE\n    memory-encryption derates land almost "
          "fully on the latency (Figs. 4, 9).")
    print("  - 'CPU ceil'/'GPU ceil' are weight-streaming ceilings: no "
          "software exceeds\n    bandwidth/weights tokens/s at batch 1.")
    print("  - 'CB batch' is where decode turns compute-bound on EMR2 — "
          "past it, TDX\n    overheads shrink toward the virtualization "
          "tax (Insight 9).")


if __name__ == "__main__":
    main()
