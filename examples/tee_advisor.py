"""TEE advisor: pick the right TEE for a confidential LLM workload.

Combines the paper's three comparison axes — security (Table I),
performance (Figs. 4/11), and cost (Figs. 12-13) — into a per-workload
recommendation, including the strict-security case where H100's
unencrypted HBM disqualifies the cGPU (Insight 11).

Run:  python examples/tee_advisor.py
"""

from dataclasses import dataclass

from repro import Workload, cpu_deployment, gpu_deployment, simulate_generation
from repro.core import render_summary_table
from repro.core.overhead import throughput_overhead
from repro.cost import GCP_SPOT_US_EAST1, cpu_cost_point, gpu_cost_point
from repro.llm import BFLOAT16, LLAMA2_7B
from repro.tee import backend_by_name


@dataclass(frozen=True)
class Scenario:
    name: str
    batch_size: int
    input_tokens: int
    requires_encrypted_accelerator_memory: bool


SCENARIOS = (
    Scenario("clinical notes, interactive", 1, 256, True),
    Scenario("fraud screening, micro-batches", 8, 128, False),
    Scenario("document pipeline, bulk", 64, 1024, False),
)


def advise(scenario: Scenario) -> str:
    workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=scenario.batch_size,
                        input_tokens=scenario.input_tokens, output_tokens=128)
    tdx = simulate_generation(workload, cpu_deployment(
        "tdx", sockets_used=1, cores_per_socket_used=32))
    base = simulate_generation(workload, cpu_deployment(
        "baremetal", sockets_used=1, cores_per_socket_used=32))
    cpu_point = cpu_cost_point(tdx, vcpus=32, catalog=GCP_SPOT_US_EAST1)
    cgpu = simulate_generation(workload, gpu_deployment())
    gpu_point = gpu_cost_point(cgpu, GCP_SPOT_US_EAST1)
    overhead = throughput_overhead(tdx, base, include_prefill=True)

    print(f"\n{scenario.name}")
    print(f"  batch {scenario.batch_size}, input {scenario.input_tokens}; "
          f"TDX overhead {overhead:.1%}; "
          f"TDX ${cpu_point.usd_per_mtok:.2f}/Mtok vs "
          f"cGPU ${gpu_point.usd_per_mtok:.2f}/Mtok")

    if scenario.requires_encrypted_accelerator_memory:
        tdx_profile = backend_by_name("tdx").security_profile()
        cgpu_profile = backend_by_name("cgpu").security_profile()
        assert tdx_profile.stricter_than(cgpu_profile)
        return ("TDX — the H100's HBM is unencrypted, so strict-security "
                "workloads must stay on CPU TEEs (Insight 11).")
    if cpu_point.usd_per_mtok <= gpu_point.usd_per_mtok:
        return (f"TDX — {gpu_point.usd_per_mtok / cpu_point.usd_per_mtok - 1:.0%} "
                "cheaper at this intensity, with the stricter security "
                "model as a bonus.")
    return (f"cGPU — compute intensity is high enough that the H100 wins "
            f"on cost ({cpu_point.usd_per_mtok / gpu_point.usd_per_mtok - 1:.0%} "
            "cheaper than TDX); accept the HBM/NVLink caveats or wait "
            "for B100-class parts.")


def main() -> None:
    print("Systems summary (Table I):\n")
    print(render_summary_table())
    for scenario in SCENARIOS:
        print(f"  -> {advise(scenario)}")


if __name__ == "__main__":
    main()
