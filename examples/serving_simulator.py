"""Serving simulator: continuous batching under TEEs.

Serves the same request stream on bare metal, TDX, and the confidential
H100 with a vLLM-style continuous-batching scheduler (paged KV cache,
admission control, preemption), comparing serving SLAs — time to first
token and end-to-end latency percentiles — across security postures.

Run:  python examples/serving_simulator.py
"""

from repro import cpu_deployment, gpu_deployment
from repro.llm import BFLOAT16, LLAMA2_7B
from repro.serving import ContinuousBatchingScheduler, poisson_stream


def main() -> None:
    requests = poisson_stream(60, rate_per_s=4.0, mean_prompt=256,
                              mean_output=64, seed=5)
    span = requests[-1].arrival_s
    tokens = sum(r.output_tokens for r in requests)
    print(f"Stream: {len(requests)} requests over {span:.1f} s "
          f"({tokens} output tokens total)\n")

    print(f"{'backend':>10s} {'tok/s':>7s} {'ttft p50':>9s} {'ttft p95':>9s} "
          f"{'e2e p95':>8s} {'batch':>6s} {'preempt':>8s}")
    for backend in ("baremetal", "tdx", "gpu", "cgpu"):
        if backend in ("gpu", "cgpu"):
            deployment = gpu_deployment(confidential=backend == "cgpu")
        else:
            deployment = cpu_deployment(backend, sockets_used=1)
        scheduler = ContinuousBatchingScheduler(
            deployment, LLAMA2_7B, BFLOAT16, kv_capacity_tokens=200_000,
            max_batch=32)
        report = scheduler.run(requests)
        print(f"{backend:>10s} {report.throughput_tok_s:7.1f} "
              f"{report.ttft_percentile(50):8.2f}s "
              f"{report.ttft_percentile(95):8.2f}s "
              f"{report.e2e_percentile(95):7.1f}s "
              f"{report.mean_batch_occupancy:6.1f} "
              f"{report.total_preemptions:8d}")

    print("\nTight KV pool (preemption demo):")
    scheduler = ContinuousBatchingScheduler(
        cpu_deployment("tdx", sockets_used=1), LLAMA2_7B, BFLOAT16,
        kv_capacity_tokens=4096, max_batch=16)
    tight = poisson_stream(12, rate_per_s=50.0, mean_prompt=300,
                           mean_output=150, seed=6)
    report = scheduler.run(tight)
    print(f"  {report.total_preemptions} preemptions; every request still "
          f"completed (e2e p95 {report.e2e_percentile(95):.1f} s)")


if __name__ == "__main__":
    main()
