"""Capacity planner: size a confidential inference deployment.

Given a request mix (prompt/output length distribution), a latency SLA,
and a batch-size target, sweep core counts and compare CPU TEEs against
the confidential H100 on cost per million tokens — the paper's Fig. 12
analysis turned into a planning tool.

Run:  python examples/capacity_planner.py
"""

from repro import Workload, cpu_deployment, gpu_deployment, simulate_generation
from repro.core.metrics import HUMAN_READING_LATENCY_S, latency_stats
from repro.cost import GCP_SPOT_US_EAST1, best_cpu_point, cpu_cost_point, gpu_cost_point
from repro.llm import BFLOAT16, LLAMA2_7B
from repro.workloads import request_stream

CORE_OPTIONS = (8, 16, 24, 32, 48, 60)
BATCH = 8


def main() -> None:
    print("Sampling the expected request mix...")
    requests = request_stream(200, mean_prompt=384, mean_output=128, seed=3)
    mean_in = sum(r.prompt_tokens for r in requests) // len(requests)
    mean_out = sum(r.output_tokens for r in requests) // len(requests)
    print(f"  {len(requests)} requests, mean prompt {mean_in} tokens, "
          f"mean output {mean_out} tokens; serving batch {BATCH}\n")

    workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=BATCH,
                        input_tokens=mean_in, output_tokens=mean_out)

    print(f"{'config':>14s} {'tok/s':>8s} {'ms/tok':>7s} {'SLA':>4s} "
          f"{'$/hr':>7s} {'$/Mtok':>8s}")
    points = []
    for cores in CORE_OPTIONS:
        deployment = cpu_deployment("tdx", sockets_used=1,
                                    cores_per_socket_used=cores)
        result = simulate_generation(workload, deployment)
        stats = latency_stats(result.latency_samples_s)
        point = cpu_cost_point(result, vcpus=cores,
                               catalog=GCP_SPOT_US_EAST1)
        points.append((point, stats))
        sla = "ok" if stats.meets_reading_speed else "MISS"
        print(f"{'tdx-' + str(cores) + 'c':>14s} "
              f"{result.throughput_tok_s:8.1f} {stats.mean_s * 1e3:7.1f} "
              f"{sla:>4s} {point.price_hr:7.3f} {point.usd_per_mtok:8.3f}")

    cgpu_result = simulate_generation(workload, gpu_deployment())
    gpu_point = gpu_cost_point(cgpu_result, GCP_SPOT_US_EAST1)
    print(f"{'cgpu-h100':>14s} {cgpu_result.throughput_tok_s:8.1f} "
          f"{cgpu_result.next_token_latency_s * 1e3:7.1f} {'ok':>4s} "
          f"{gpu_point.price_hr:7.3f} {gpu_point.usd_per_mtok:8.3f}")

    meeting_sla = [point for point, stats in points
                   if stats.meets_reading_speed]
    best = best_cpu_point(meeting_sla or [point for point, _ in points])
    print(f"\nRecommendation under the {HUMAN_READING_LATENCY_S * 1e3:.0f} ms"
          f"/token SLA:")
    if best.usd_per_mtok <= gpu_point.usd_per_mtok:
        saving = gpu_point.usd_per_mtok / best.usd_per_mtok - 1
        print(f"  {best.label}: ${best.usd_per_mtok:.3f}/Mtok — "
              f"{saving:.0%} cheaper than the confidential H100, with "
              "stricter security\n  (encrypted memory, protected socket "
              "interconnect).")
    else:
        premium = best.usd_per_mtok / gpu_point.usd_per_mtok - 1
        print(f"  cgpu-h100: ${gpu_point.usd_per_mtok:.3f}/Mtok — the CPU "
              f"TEE costs {premium:.0%} more at this\n  batch/input mix; "
              "pick TDX only if HBM encryption is a hard requirement.")


if __name__ == "__main__":
    main()
