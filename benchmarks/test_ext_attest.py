"""Attestation-tax extension — what phased confidential boots cost.

The paper reports steady-state throughput and cost; a confidential
deployment also pays a *cold-start lifecycle* the plaintext one does
not: provisioning, attestation, key release from the KMS, model
decryption inside the enclave, then the (TEE-throttled) weight load.
This bench arms the capacity and chaos headline fleets with the phased
boot model (:mod:`repro.tee.boot`) and reads off the attestation tax —
the $/Mtok and p99-TTFT deltas over the legacy instant-boot twin of
the same fleet serving the same stream.

Findings:

* Cold starts are tens of seconds on every confidential backend:
  ~26s on TDX and ~27s on cGPU for Llama2-7B (SGX is worst at ~39s —
  slow decrypt *and* slow load).  On the cGPU the confidential phases
  are dominated by provisioning + attestation; on the CPU TEEs the
  byte-proportional decrypt/load phases dominate.
* On a burst that arrives before the fleet is live, the whole boot
  shows up in the tail: phased p99 TTFT exceeds the legacy fleet's by
  roughly the boot total, and SLO attainment collapses to zero — cold
  starts must be hidden (pre-provisioning, pools), not amortized.
* The tax is also a bill: the boot window is rented but serves
  nothing, and chaos re-attestations (paying the reattest remainder,
  not a drawn outage) keep charging it.  The chaos cGPU cell pays an
  extra ~$11.5/Mtok — ~4.5x the TDX chaos tax, the paper's cost
  ranking amplified by the fault path.
* Re-attestation is cheaper than a cold boot everywhere: provisioning
  is never repaid, so the reattest window is 55-69% of the full boot.
"""

from helpers import print_rows, run_once

from repro.tee.boot import (
    TAX_FLEET_KINDS,
    TAX_ROW_FIELDS,
    attest_tax_sweep,
    boot_breakdown,
)


def regenerate() -> dict:
    return {"tax": attest_tax_sweep(), "boot": boot_breakdown()}


def test_ext_attest(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows("Phased confidential boot breakdown (s)", data["boot"])
    print_rows("Attestation tax vs legacy instant boot",
               data["tax"], order=list(TAX_ROW_FIELDS))

    boot = {row["kind"]: row for row in data["boot"]}
    tax = {(row["kind"], row["scenario"]): row for row in data["tax"]}
    assert set(kind for kind, _ in tax) == set(TAX_FLEET_KINDS)

    # Cold starts are tens of seconds on every confidential backend;
    # SGX is the slowest (slow decrypt and slow load).
    for row in boot.values():
        assert 20.0 < row["total_s"] < 45.0
    assert boot["sgx"]["total_s"] > boot["tdx"]["total_s"]
    assert boot["sgx"]["total_s"] > boot["cgpu"]["total_s"]

    # Phase mix differs by backend: the cGPU's boot is dominated by
    # provisioning + attestation overheads, the CPU TEEs' by the
    # byte-proportional decrypt/load phases.
    cgpu = boot["cgpu"]
    assert (cgpu["provisioning"] + cgpu["attesting"]
            > cgpu["model_decrypt"] + cgpu["weight_load"])
    for kind in ("tdx", "sgx"):
        row = boot[kind]
        assert (row["model_decrypt"] + row["weight_load"]
                > row["provisioning"] + row["attesting"])

    # Re-attestation never repays provisioning, so it is strictly
    # cheaper than a cold boot — but still a majority of it.
    for row in boot.values():
        assert 0.5 < row["reattest_s"] / row["total_s"] < 0.8

    for (kind, scenario), row in tax.items():
        # The tax is real and positive in every cell: phased fleets
        # bill more per good token and have fatter tails.
        assert row["tax_usd_per_mtok"] > 0
        assert row["tax_p99_ttft_s"] > 0
        assert row["phased_usd_per_mtok"] > row["legacy_usd_per_mtok"]
        # The burst arrives before the fleet is live, so the boot
        # shows up in the tail nearly whole.
        assert row["tax_p99_ttft_s"] > row["boot_s"] * 0.9
        assert row["phased_slo_attainment"] == 0.0
        assert row["boot_s"] == boot[kind]["total_s"]
        assert row["reattest_s"] == boot[kind]["reattest_s"]

    # Capacity headline: the tax roughly doubles $/Mtok on both
    # backends (the boot window is rented but serves nothing).
    for kind in TAX_FLEET_KINDS:
        row = tax[(kind, "capacity")]
        ratio = row["phased_usd_per_mtok"] / row["legacy_usd_per_mtok"]
        assert 1.5 < ratio < 2.5

    # Chaos headline: re-attestations keep charging the boot, and the
    # cGPU premium amplifies the dollar tax well past the TDX one.
    assert (tax[("cgpu", "chaos")]["tax_usd_per_mtok"]
            > 3 * tax[("tdx", "chaos")]["tax_usd_per_mtok"])
