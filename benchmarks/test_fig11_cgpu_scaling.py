"""Fig. 11 — cGPU throughput vs batch and input size (H100 NVL, vLLM).

Paper: cGPU overheads oscillate between ~7.5% and ~4.4% and shrink as
batch and input sizes grow (fixed CC costs — encrypted command buffers,
kernel-launch path, bounce-buffer staging — amortize over more work).
"""

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import gpu_deployment
from repro.core.overhead import throughput_overhead
from repro.engine.placement import Workload
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16

BATCHES = (1, 4, 16, 64)
INPUTS = (128, 512, 2048)


def regenerate() -> dict:
    rows = []
    series = {}
    for batch in BATCHES:
        for input_len in INPUTS:
            workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=batch,
                                input_tokens=input_len, output_tokens=128)
            gpu = simulate_cached(workload,
                                      gpu_deployment(confidential=False))
            cgpu = simulate_cached(workload,
                                       gpu_deployment(confidential=True))
            overhead = throughput_overhead(cgpu, gpu, include_prefill=True)
            series[(batch, input_len)] = overhead
            rows.append({
                "batch": batch,
                "input_tokens": input_len,
                "gpu_tput_tok_s": gpu.throughput_tok_s,
                "cgpu_tput_tok_s": cgpu.throughput_tok_s,
                "cc_overhead_pct": 100 * overhead,
            })
    return {"rows": rows, "series": series}


def test_fig11_cgpu_scaling(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows("Fig. 11: cGPU batch/input scaling (H100 NVL)", data["rows"])
    series = data["series"]

    # Band: ~4-8.5% at the corners the paper reports (7.5% -> 4.4%).
    assert 0.06 <= series[(1, 128)] <= 0.095
    assert 0.030 <= series[(64, 2048)] <= 0.055

    # Overhead shrinks along both axes.
    for input_len in INPUTS:
        assert series[(64, input_len)] < series[(1, input_len)]
    for batch in BATCHES:
        assert series[(batch, 2048)] < series[(batch, 128)]

    # All points stay under 10% (Insight 10).
    assert max(series.values()) < 0.10
