"""Fig. 12 — vCPU scaling and cost of generating 1M tokens on EMR2.

128 in/out tokens, bf16, single socket; GCP spot prices with 128 GB of
memory fixed; one physical core = one billed vCPU.  Paper: the workload
is compute-bound until ~32 cores; memory cost dominates small instances;
larger batches make bigger machines economical; the cGPU is up to ~100%
more expensive at batch 1 and the CPU advantage fades as batch grows
(the paper's crossover lands at batch ~128; our simulator crosses
earlier — see EXPERIMENTS.md).
"""

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import cpu_deployment, gpu_deployment
from repro.core.overhead import throughput_overhead
from repro.cost.efficiency import best_cpu_point, cpu_cost_point, gpu_cost_point
from repro.cost.pricing import GCP_SPOT_US_EAST1
from repro.engine.placement import Workload
from repro.engine.roofline import cost_model_for
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16
from repro.llm.graph import decode_step_ops

BATCHES = (1, 16, 64, 128)
CORES = (8, 16, 24, 32, 40, 48, 56)


def regenerate() -> dict:
    rows = []
    best_points = {}
    gpu_points = {}
    compute_bound_knee = {}
    for batch in BATCHES:
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=batch,
                            input_tokens=128, output_tokens=128)
        points = []
        for cores in CORES:
            deployment = cpu_deployment("tdx", sockets_used=1,
                                        cores_per_socket_used=cores)
            base = cpu_deployment("baremetal", sockets_used=1,
                                  cores_per_socket_used=cores)
            tdx = simulate_cached(workload, deployment)
            baseline = simulate_cached(workload, base)
            point = cpu_cost_point(tdx, vcpus=cores,
                                   catalog=GCP_SPOT_US_EAST1)
            points.append(point)
            rows.append({
                "batch": batch,
                "vcpus": cores,
                "tput_tok_s": tdx.throughput_tok_s,
                "tdx_overhead_pct": 100 * throughput_overhead(
                    tdx, baseline, include_prefill=True),
                "usd_per_mtok": point.usd_per_mtok,
            })
        best_points[batch] = best_cpu_point(points)
        cgpu = simulate_cached(workload, gpu_deployment())
        gpu_points[batch] = gpu_cost_point(cgpu, GCP_SPOT_US_EAST1)

        # Locate the compute/memory-bound knee for this batch.
        model = cost_model_for(cpu_deployment("baremetal", sockets_used=1))
        from repro.engine.simulator import _working_sets
        ops = decode_step_ops(LLAMA2_7B, BFLOAT16, batch, 192)
        knee = None
        for cores in CORES:
            deployment = cpu_deployment("baremetal", sockets_used=1,
                                        cores_per_socket_used=cores)
            step = cost_model_for(deployment).step_cost(
                ops, _working_sets(workload, deployment, 192, ops), BFLOAT16)
            if not step.is_compute_bound():
                knee = cores
                break
        compute_bound_knee[batch] = knee
    return {"rows": rows, "best": best_points, "gpu": gpu_points,
            "knee": compute_bound_knee}


def test_fig12_vcpu_cost(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows("Fig. 12: vCPU scaling and $/Mtok (TDX, EMR2)", data["rows"])
    for batch in BATCHES:
        best = data["best"][batch]
        gpu = data["gpu"][batch]
        print(f"batch {batch}: best CPU {best.vcpus}c "
              f"${best.usd_per_mtok:.3f}/Mtok vs cGPU "
              f"${gpu.usd_per_mtok:.3f}/Mtok "
              f"(cGPU {100 * (gpu.usd_per_mtok / best.usd_per_mtok - 1):+.0f}%)")

    # Batch 64 stays compute-bound until ~32 cores (paper's knee).
    assert data["knee"][64] is not None and 24 <= data["knee"][64] <= 48

    # Batch 1: cGPU substantially more expensive (paper: up to ~100%).
    ratio_1 = (data["gpu"][1].usd_per_mtok
               / data["best"][1].usd_per_mtok)
    assert ratio_1 > 1.7

    # The CPU advantage fades monotonically with batch size and flips.
    ratios = [data["gpu"][batch].usd_per_mtok
              / data["best"][batch].usd_per_mtok for batch in BATCHES]
    assert ratios == sorted(ratios, reverse=True)
    assert ratios[-1] < 1.0  # crossover reached by batch 128

    # Larger batches favour more cores (optimal core count rises).
    assert data["best"][128].vcpus >= data["best"][1].vcpus
