"""§IV-A/§IV-D ablations — the paper's tuning knobs.

Three configuration findings the paper reports while tuning the TEEs:

* exposing hyperthreads to the TDX guest only adds noise and scheduling
  tax (PyTorch pins to the first logical thread of each core),
* TCMalloc reduces memory pressure vs glibc malloc,
* using the largest possible EPC "significantly influences overheads" —
  an undersized EPC pages, and paging verification is ruinous.
"""

import dataclasses

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import cpu_deployment
from repro.core.overhead import throughput_overhead
from repro.engine.placement import Workload
from repro.hardware.cpu import EMR2
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16


def regenerate() -> dict:
    workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=16,
                        input_tokens=1024, output_tokens=64)
    base = simulate_cached(workload, cpu_deployment(
        "tdx", sockets_used=1))

    hyperthreads = simulate_cached(workload, cpu_deployment(
        "tdx", sockets_used=1, expose_hyperthreads=True))
    glibc = simulate_cached(workload, cpu_deployment(
        "tdx", sockets_used=1, tcmalloc=False))

    # Undersized EPC: shrink the spec's enclave page cache below the
    # model's working set and watch SGX start paging.
    small_epc_cpu = dataclasses.replace(EMR2, sgx_epc_per_socket=8 * 2**30)
    sgx_ok = simulate_cached(workload, cpu_deployment(
        "sgx", sockets_used=1))
    sgx_small = simulate_cached(workload, cpu_deployment(
        "sgx", cpu=small_epc_cpu, sockets_used=1))

    rows = [
        {"knob": "tdx tuned (baseline)", "tput_tok_s":
            base.decode_throughput_tok_s, "slowdown_pct": 0.0},
        {"knob": "tdx + hyperthreads exposed", "tput_tok_s":
            hyperthreads.decode_throughput_tok_s,
         "slowdown_pct": 100 * throughput_overhead(hyperthreads, base)},
        {"knob": "tdx + glibc malloc", "tput_tok_s":
            glibc.decode_throughput_tok_s,
         "slowdown_pct": 100 * throughput_overhead(glibc, base)},
        {"knob": "sgx, full EPC", "tput_tok_s":
            sgx_ok.decode_throughput_tok_s, "slowdown_pct": 0.0},
        {"knob": "sgx, 8 GiB EPC (pages)", "tput_tok_s":
            sgx_small.decode_throughput_tok_s,
         "slowdown_pct": 100 * throughput_overhead(sgx_small, sgx_ok)},
    ]
    return {"rows": rows, "base": base, "hyperthreads": hyperthreads,
            "glibc": glibc, "sgx_ok": sgx_ok, "sgx_small": sgx_small}


def test_ablation_tuning(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows("Tuning-knob ablations (EMR2, single socket)", data["rows"])

    # Hyperthreads: a measurable scheduling tax, single-digit percent.
    ht = throughput_overhead(data["hyperthreads"], data["base"])
    assert 0.01 < ht < 0.08

    # glibc vs TCMalloc: small but real memory-pressure cost.
    alloc = throughput_overhead(data["glibc"], data["base"])
    assert 0.0 < alloc < 0.06

    # Undersized EPC: paging verification dwarfs everything else.
    epc = throughput_overhead(data["sgx_small"], data["sgx_ok"])
    assert epc > 1.0
