"""Fig. 10 — generation throughput vs input size on EMR2.

Single socket, 128 output tokens, batch 64, bf16/int8.  Paper: TDX's
overhead decreases as the input grows (the workload saturates the AMX
units and the low-overhead prefill grows in share) until ~2048 tokens,
after which the per-token KV-cache reads spill the LLC and TLB misses
rise, pushing the decode phase back toward memory-bound overheads.

Our reproduction captures both regimes across two series: the
first-token-inclusive throughput overhead falls with input size, and the
decode-only overhead rises at large inputs (the terminal-regime signal).
EXPERIMENTS.md discusses the blend difference with the paper's plot.
"""

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import cpu_deployment
from repro.core.overhead import throughput_overhead
from repro.engine.placement import Workload
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16, INT8

INPUTS = (32, 128, 256, 512, 1024, 2048, 3584)


def regenerate() -> dict:
    rows = []
    series = {}
    for dtype in (BFLOAT16, INT8):
        for input_len in INPUTS:
            workload = Workload(LLAMA2_7B, dtype, batch_size=64,
                                input_tokens=input_len, output_tokens=128)
            base = simulate_cached(workload, cpu_deployment(
                "baremetal", sockets_used=1))
            tdx = simulate_cached(workload, cpu_deployment(
                "tdx", sockets_used=1))
            overall = throughput_overhead(tdx, base, include_prefill=True)
            decode_only = throughput_overhead(tdx, base)
            series[(dtype.name, input_len)] = (overall, decode_only)
            rows.append({
                "dtype": dtype.name,
                "input_tokens": input_len,
                "baremetal_tput_tok_s": base.throughput_tok_s,
                "tdx_overhead_pct": 100 * overall,
                "tdx_decode_overhead_pct": 100 * decode_only,
            })
    return {"rows": rows, "series": series}


def test_fig10_input_scaling(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows("Fig. 10: input-size scaling (bs=64, EMR2)", data["rows"])
    series = data["series"]

    for dtype in ("bf16", "int8"):
        # Overall overhead decreases with input size up to 2048.
        # int8 saturates at a ~4.4% floor almost immediately, so allow
        # sub-0.1-point wiggle around the floor.
        overall = [series[(dtype, n)][0] for n in INPUTS if n <= 2048]
        assert all(later <= earlier + 1e-3
                   for earlier, later in zip(overall, overall[1:])), dtype
        # Decode-only overhead rises in the KV-spill regime.
        decode_small = series[(dtype, 128)][1]
        decode_large = series[(dtype, 3584)][1]
        assert decode_large > decode_small, dtype
        # The terminal decode regime returns to small-batch-like
        # overheads (paper: "similar to smaller batch sizes").
        assert decode_large > 0.07, dtype

    # Raw throughput decreases with input size (more prefill + KV work).
    rows = {(row["dtype"], row["input_tokens"]): row for row in data["rows"]}
    assert (rows[("bf16", 32)]["baremetal_tput_tok_s"]
            > rows[("bf16", 3584)]["baremetal_tput_tok_s"])
