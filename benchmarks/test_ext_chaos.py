"""Chaos extension — serving economics as replicas start failing.

The paper's cost comparison (§V-D) assumes immortal replicas.  This
bench replays the committed MTBF sweep from :mod:`repro.faults.sweep`
(the series the ``golden.chaos_mtbf`` audit check snapshots): the same
seeded request stream against single-replica TDX and cGPU fleets under
hazard-rate fault schedules at decreasing mean-time-between-failures,
with seeded timeout/retry recovery.

The resilience finding extends the performance one: the same hazard
rate hurts the CPU TEE far more than the confidential GPU — TDX holds a
request in harm's way ~5x longer per token, so crashes waste more work
and its SLO attainment collapses faster.  But the cost ranking again
survives: even at MTBF 6 s, faulted TDX stays cheaper per million
tokens than the *fault-free* cGPU fleet.
"""

from helpers import print_rows, run_once

from repro.faults.sweep import DEFAULT_MTBF_GRID_S, mtbf_sweep

KINDS = ("tdx", "cgpu")


def regenerate() -> dict:
    rows = mtbf_sweep()
    by_point = {(r["kind"], r["mtbf_s"]): r for r in rows}
    return {"rows": rows, "by_point": by_point}


def test_ext_chaos(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows("Chaos MTBF sweep (TTFT SLO 2 s, single replica per kind)",
               data["rows"])
    point = data["by_point"]
    grid = [p for p in DEFAULT_MTBF_GRID_S if p is not None]

    for kind in KINDS:
        anchor = point[(kind, None)]
        # Fault-free anchor: clean run, full SLO attainment, no waste.
        assert anchor["slo_attainment"] == 1.0
        assert anchor["retries"] == 0 and anchor["wasted_tokens"] == 0
        assert anchor["cost_usd"] == anchor["goodput_cost_usd"]

        # Conservation even under faults: nothing lost.
        for mtbf in grid:
            row = point[(kind, mtbf)]
            assert row["completed"] + row["shed"] == 36
            assert row["fault_events"] > 0

        # SLO attainment degrades monotonically with failure rate...
        attainment = [point[(kind, m)]["slo_attainment"]
                      for m in [None] + grid]
        assert all(b < a for a, b in zip(attainment, attainment[1:])), kind

        # ...and every faulted point costs more per good token.
        for mtbf in grid:
            assert (point[(kind, mtbf)]["usd_per_mtok"]
                    > anchor["usd_per_mtok"] * 1.5), (kind, mtbf)

    # The slower CPU TEE is hit harder by the same hazard: its SLO
    # collapse at the densest point is deeper than the cGPU's, and it
    # burns retries/wasted tokens where the cGPU mostly just stalls.
    worst = grid[-1]
    assert (point[("tdx", worst)]["slo_attainment"]
            < point[("cgpu", worst)]["slo_attainment"])
    assert (point[("tdx", worst)]["wasted_tokens"]
            > point[("cgpu", worst)]["wasted_tokens"])

    # The paper's cost ranking survives chaos: faulted TDX still beats
    # even the fault-free cGPU per million tokens.
    assert (point[("tdx", worst)]["usd_per_mtok"]
            < point[("cgpu", None)]["usd_per_mtok"])
