"""§III-C cross-model validation.

The paper verifies that its Llama2-7B findings carry to other dense
transformers — Llama3 8B, GPT-J 6B, Falcon 7B, Baichuan2 7B, Qwen 7B —
reporting TDX overheads of 3.1-13.1%, in line with the Llama2 results.
"""

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import cpu_deployment
from repro.core.overhead import throughput_overhead
from repro.engine.placement import Workload
from repro.llm.config import LLAMA2_7B, VALIDATION_MODELS
from repro.llm.datatypes import BFLOAT16


def regenerate() -> list[dict]:
    rows = []
    for model in (LLAMA2_7B,) + VALIDATION_MODELS:
        workload = Workload(model, BFLOAT16, batch_size=1,
                            input_tokens=1024, output_tokens=64)
        base = simulate_cached(workload, cpu_deployment(
            "baremetal", sockets_used=1))
        tdx = simulate_cached(workload, cpu_deployment(
            "tdx", sockets_used=1))
        rows.append({
            "model": model.name,
            "params_b": model.num_parameters / 1e9,
            "baremetal_tput_tok_s": base.decode_throughput_tok_s,
            "tdx_overhead_pct": 100 * throughput_overhead(tdx, base),
        })
    return rows


def test_xmodel_validation(benchmark):
    rows = run_once(benchmark, regenerate)
    print_rows("Cross-model TDX validation (EMR2, 1 socket)", rows)
    overheads = {row["model"]: row["tdx_overhead_pct"] for row in rows}
    reference = overheads.pop("llama2-7b")
    for model, overhead in overheads.items():
        # Paper band: 3.1-13.1%, "in line with" the Llama2-7B result.
        assert 3.1 <= overhead <= 13.1, (model, overhead)
        assert abs(overhead - reference) < 4.0, (model, overhead)
