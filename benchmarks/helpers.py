"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper: it runs
the experiment through the simulator (timed via pytest-benchmark),
prints the same rows/series the paper reports, and asserts the shape —
who wins, by roughly what factor, where crossovers fall.
"""

from __future__ import annotations

from typing import Callable

from repro.engine.placement import Deployment, Workload
from repro.engine.simulator import GenerationResult, simulate_generation
from repro.memo import MemoCache

# The figure benchmarks overlap heavily in the (workload, deployment)
# pairs they simulate — e.g. Fig. 8 and Fig. 9 both sweep Llama2-7B at
# 128/128 tokens over the same batch sizes on the same TDX deployments.
# One process-wide result cache lets every file reuse the simulations
# (and, underneath, the memoized cost engines) of the files before it.
_RESULT_CACHE = MemoCache("bench_generation", maxsize=4096)


def simulate_cached(workload: Workload, deployment: Deployment,
                    **kwargs) -> GenerationResult:
    """Memoized :func:`simulate_generation` for the benchmark suite.

    Keyed on the full (workload, deployment, kwargs) triple, so seeds,
    ``record_steps`` and engine choices are all part of the identity.
    Treat the returned result as read-only: it is shared across files.
    """
    key = (workload, deployment, tuple(sorted(kwargs.items())))
    return _RESULT_CACHE.get_or_compute(
        key, lambda: simulate_generation(workload, deployment, **kwargs))


def print_rows(title: str, rows: list[dict], order: list[str] | None = None) -> None:
    """Print a list of dict rows as an aligned table."""
    if not rows:
        raise ValueError("no rows to print")
    columns = order or list(rows[0])
    widths = {col: max(len(col), *(len(_fmt(row[col])) for row in rows))
              for col in columns}
    print(f"\n=== {title} ===")
    print("  ".join(col.ljust(widths[col]) for col in columns))
    for row in rows:
        print("  ".join(_fmt(row[col]).ljust(widths[col]) for col in columns))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 100:
            return f"{value:.0f}"
        if 0 < abs(value) < 0.01:
            return f"{value:.6f}"
        return f"{value:.3f}"
    return str(value)


def run_once(benchmark, func: Callable):
    """Execute a figure-regeneration function once under the benchmark
    timer (figure regeneration is deterministic; repeated rounds would
    only re-measure the same simulation)."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
