"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper: it runs
the experiment through the simulator (timed via pytest-benchmark),
prints the same rows/series the paper reports, and asserts the shape —
who wins, by roughly what factor, where crossovers fall.
"""

from __future__ import annotations

from typing import Callable


def print_rows(title: str, rows: list[dict], order: list[str] | None = None) -> None:
    """Print a list of dict rows as an aligned table."""
    if not rows:
        raise ValueError("no rows to print")
    columns = order or list(rows[0])
    widths = {col: max(len(col), *(len(_fmt(row[col])) for row in rows))
              for col in columns}
    print(f"\n=== {title} ===")
    print("  ".join(col.ljust(widths[col]) for col in columns))
    for row in rows:
        print("  ".join(_fmt(row[col]).ljust(widths[col]) for col in columns))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 100:
            return f"{value:.0f}"
        if 0 < abs(value) < 0.01:
            return f"{value:.6f}"
        return f"{value:.3f}"
    return str(value)


def run_once(benchmark, func: Callable):
    """Execute a figure-regeneration function once under the benchmark
    timer (figure regeneration is deterministic; repeated rounds would
    only re-measure the same simulation)."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
