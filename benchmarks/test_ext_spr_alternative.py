"""§V-D2 extension — the Sapphire Rapids cost alternative.

The paper notes that because the workload becomes memory-bound easily,
"renting an almost 2x cheaper Sapphire Rapids performing up to 40% worse
provides an even more affordable alternative".  This bench runs the
Fig. 12 cost analysis on the SPR spec with the discounted rate.
"""

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import cpu_deployment
from repro.cost.efficiency import cpu_cost_point
from repro.cost.pricing import GCP_SPOT_US_EAST1
from repro.engine.placement import Workload
from repro.hardware.cpu import EMR2, SPR
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16

BATCHES = (1, 16, 64)
CORES = 32


def regenerate() -> dict:
    rows = []
    points = {}
    for batch in BATCHES:
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=batch,
                            input_tokens=128, output_tokens=128)
        emr = simulate_cached(workload, cpu_deployment(
            "tdx", cpu=EMR2, sockets_used=1, cores_per_socket_used=CORES))
        spr = simulate_cached(workload, cpu_deployment(
            "tdx", cpu=SPR, sockets_used=1, cores_per_socket_used=CORES))
        emr_point = cpu_cost_point(emr, vcpus=CORES,
                                   catalog=GCP_SPOT_US_EAST1, label="emr")
        spr_point = cpu_cost_point(spr, vcpus=CORES,
                                   catalog=GCP_SPOT_US_EAST1, label="spr",
                                   spr=True)
        points[batch] = (emr_point, spr_point, emr, spr)
        rows.append({
            "batch": batch,
            "emr_tput_tok_s": emr.throughput_tok_s,
            "spr_tput_tok_s": spr.throughput_tok_s,
            "perf_loss_pct": 100 * (1 - spr.throughput_tok_s
                                    / emr.throughput_tok_s),
            "emr_usd_per_mtok": emr_point.usd_per_mtok,
            "spr_usd_per_mtok": spr_point.usd_per_mtok,
        })
    return {"rows": rows, "points": points}


def test_ext_spr_alternative(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows("SPR vs EMR cost alternative (TDX, 32 cores)", data["rows"])

    for batch in BATCHES:
        emr_point, spr_point, emr, spr = data["points"][batch]
        # SPR performs worse, but within the paper's "up to 40%".
        loss = 1 - spr.throughput_tok_s / emr.throughput_tok_s
        assert 0.05 < loss < 0.40
        # Yet the discounted rate makes it cheaper per token.
        assert spr_point.usd_per_mtok < emr_point.usd_per_mtok
