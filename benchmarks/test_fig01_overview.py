"""Fig. 1 — headline overview: Llama2-7B inference overheads in a VM TEE
(TDX), an application TEE (SGX), and a GPU TEE (cGPU).

Paper: TEEs for LLMs incur only 4-7% throughput reduction.
"""

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import Experiment, cpu_deployment, gpu_deployment
from repro.core.overhead import throughput_overhead
from repro.engine.placement import Workload
from repro.hardware.cpu import EMR1
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16


def regenerate() -> list[dict]:
    workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=6, input_tokens=1024,
                        output_tokens=128, beam_size=4)
    cpu_outcome = Experiment(
        name="fig1-cpu", workload=workload,
        deployments={
            "baremetal": cpu_deployment("baremetal", cpu=EMR1, sockets_used=1),
            "sgx": cpu_deployment("sgx", cpu=EMR1, sockets_used=1),
            "tdx": cpu_deployment("tdx", cpu=EMR1, sockets_used=1),
        }).run()
    gpu_workload = workload.with_(beam_size=1)
    gpu = simulate_cached(gpu_workload, gpu_deployment(confidential=False))
    cgpu = simulate_cached(gpu_workload, gpu_deployment(confidential=True))

    rows = []
    for label in ("sgx", "tdx"):
        report = cpu_outcome.overhead(label)
        rows.append({
            "system": f"{label} (CPU TEE)",
            "baseline": "baremetal",
            "throughput_overhead_pct": 100 * report.throughput_overhead,
        })
    rows.append({
        "system": "cgpu (GPU TEE)",
        "baseline": "gpu",
        "throughput_overhead_pct": 100 * throughput_overhead(
            cgpu, gpu, include_prefill=True),
    })
    return rows


def test_fig01_overview(benchmark):
    rows = run_once(benchmark, regenerate)
    print_rows("Fig. 1: TEE overheads for Llama2-7B", rows)
    by_system = {row["system"].split()[0]: row["throughput_overhead_pct"]
                 for row in rows}
    # Paper headline: single-resource TEE overheads are single-digit.
    assert 3.5 <= by_system["sgx"] <= 7.5
    assert 5.0 <= by_system["tdx"] <= 11.0
    assert 4.0 <= by_system["cgpu"] <= 9.0
