"""§IV-A ablation — SGX across two sockets.

SGX presents memory as one unified NUMA node, so a two-socket deployment
lands all allocations on one socket and the far socket's cores pull
everything over the (encrypted) UPI link.  Paper: overheads become
prohibitively large, up to ~230%, predominantly due to the missing NUMA
support rather than the interconnect encryption itself.
"""

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import cpu_deployment
from repro.core.overhead import throughput_overhead
from repro.engine.placement import Workload
from repro.hardware.cpu import EMR1
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16
from repro.memsim.pages import HugepagePolicy
from repro.tee.base import MechanismToggles
from repro.engine.placement import Deployment


def regenerate() -> dict:
    workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=6, input_tokens=1024,
                        output_tokens=32, beam_size=4)
    rows = []
    runs = {}
    for sockets in (1, 2):
        base = simulate_cached(workload, cpu_deployment(
            "baremetal", cpu=EMR1, sockets_used=sockets,
            hugepages=HugepagePolicy.RESERVED_1G))
        sgx = simulate_cached(workload, cpu_deployment(
            "sgx", cpu=EMR1, sockets_used=sockets))
        runs[sockets] = (base, sgx)
        rows.append({
            "sockets": sockets,
            "baremetal_tput_tok_s": base.decode_throughput_tok_s,
            "sgx_tput_tok_s": sgx.decode_throughput_tok_s,
            "sgx_overhead_pct": 100 * throughput_overhead(sgx, base),
        })

    # Decompose: disable UPI crypto to isolate the NUMA contribution.
    sgx_no_crypto = cpu_deployment("sgx", cpu=EMR1, sockets_used=2)
    sgx_no_crypto = Deployment(
        placement=sgx_no_crypto.placement, backend=sgx_no_crypto.backend,
        framework=sgx_no_crypto.framework,
        toggles=MechanismToggles(upi_crypto=False, memory_encryption=False))
    no_crypto = simulate_cached(workload, sgx_no_crypto)
    numa_only = throughput_overhead(no_crypto, runs[2][0])
    return {"rows": rows, "runs": runs, "numa_only_overhead": numa_only}


def test_ablation_sgx_multisocket(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows("SGX multi-socket ablation (EMR1)", data["rows"])
    print(f"NUMA-only share of the two-socket overhead: "
          f"{100 * data['numa_only_overhead']:.0f}%")
    overhead = {row["sockets"]: row["sgx_overhead_pct"]
                for row in data["rows"]}

    # One socket: the normal band.  Two sockets: prohibitive.
    assert overhead[1] < 8.0
    assert overhead[2] > 100.0

    # The paper attributes the blow-up predominantly to NUMA, not link
    # crypto: the crypto-free run must retain most of the overhead.
    assert data["numa_only_overhead"] > 0.7 * overhead[2] / 100.0
