"""§V-D3 extension — projected B100 confidential-compute overheads.

The paper could not rent CC-mode B100s but expects their HBM and NVLink
encryption to "add a non-negligible overhead to H100s' results, since we
identified memory encryption as a significant cost in CPUs".  This
bench projects exactly that: the CPU-measured memory-encryption derate
applied to B100 HBM, swept over batch size.
"""

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import gpu_deployment
from repro.core.overhead import throughput_overhead
from repro.engine.placement import Workload
from repro.hardware.gpu import B100
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16

BATCHES = (1, 8, 64)


def regenerate() -> dict:
    rows = []
    series = {}
    for batch in BATCHES:
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=batch,
                            input_tokens=512, output_tokens=64)
        raw = simulate_cached(
            workload, gpu_deployment(confidential=False, gpu=B100))
        cc_h100_style = simulate_cached(
            workload, gpu_deployment(gpu=B100, backend="cgpu"))
        cc_full = simulate_cached(
            workload, gpu_deployment(gpu=B100, backend="cgpu-b100"))
        without_hbm = throughput_overhead(cc_h100_style, raw,
                                          include_prefill=True)
        with_hbm = throughput_overhead(cc_full, raw, include_prefill=True)
        series[batch] = (without_hbm, with_hbm)
        rows.append({
            "batch": batch,
            "cc_overhead_no_hbm_pct": 100 * without_hbm,
            "cc_overhead_with_hbm_pct": 100 * with_hbm,
            "hbm_encryption_cost_pct": 100 * (with_hbm - without_hbm),
        })
    return {"rows": rows, "series": series}


def test_ext_b100_projection(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows("Projected B100 CC overheads (Llama2-7B)", data["rows"])
    series = data["series"]

    for batch in BATCHES:
        without_hbm, with_hbm = series[batch]
        # HBM encryption adds a real, non-negligible cost at every batch.
        assert with_hbm > without_hbm + 0.005
        # Yet the projection stays practical (within ~2x of H100's band).
        assert with_hbm < 0.20

    # The HBM-encryption cost is largest where decode is memory-bound
    # (small batch) and shrinks once compute hides the memory path —
    # the same compute-bound relief the CPU TEEs show (Insight 9).
    hbm_costs = [series[batch][1] - series[batch][0] for batch in BATCHES]
    assert hbm_costs[0] == max(hbm_costs)
    assert hbm_costs[0] > 0.03
