"""Fig. 5 — Llama2-70B on two sockets: TDX vs NUMA-bound and unbound VMs.

The 70B model does not fit comfortably in one socket's memory; on two
sockets the TDX KVM driver ignores the provided NUMA bindings
(Insight 6).  Paper: TDX sits between VM-B (bound) and VM-NB (unbound),
with considerable latency overhead over VM-B; the 200 ms service level
is no longer upheld by any of them.
"""

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import cpu_deployment
from repro.core.overhead import latency_overhead
from repro.engine.placement import Workload
from repro.hardware.cpu import EMR1
from repro.llm.config import LLAMA2_70B
from repro.llm.datatypes import BFLOAT16


def regenerate() -> list[dict]:
    workload = Workload(LLAMA2_70B, BFLOAT16, batch_size=1,
                        input_tokens=1024, output_tokens=64)
    runs = {}
    for label, backend in (("vm-bound", "vm"), ("vm-unbound", "vm-unbound"),
                           ("tdx", "tdx")):
        runs[label] = simulate_cached(workload, cpu_deployment(
            backend, cpu=EMR1, sockets_used=2))
    rows = []
    for label, result in runs.items():
        rows.append({
            "backend": label,
            "latency_ms": result.next_token_latency_s * 1e3,
            "throughput_tok_s": result.decode_throughput_tok_s,
            "lat_overhead_vs_bound_pct": 100 * latency_overhead(
                result, runs["vm-bound"], filtered=False),
        })
    return rows


def test_fig05_numa_binding(benchmark):
    rows = run_once(benchmark, regenerate)
    print_rows("Fig. 5: Llama2-70B two-socket NUMA binding (EMR1)", rows)
    latency = {row["backend"]: row["latency_ms"] for row in rows}
    # TDX between the bound and unbound VMs, with real overhead over B.
    assert latency["vm-bound"] < latency["tdx"] < latency["vm-unbound"]
    assert latency["tdx"] > 1.05 * latency["vm-bound"]
    # 200 ms/word service level no longer upheld.
    assert all(value > 200.0 for value in latency.values())
    # The unbound VM is far worse than the bound one.
    assert latency["vm-unbound"] > 1.5 * latency["vm-bound"]
