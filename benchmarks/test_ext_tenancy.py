"""Tenancy extension — per-tenant $/Mtok and p99-TTFT fairness.

The paper prices confidential instances for one customer; real serving
planes are shared.  This bench runs the whale-dominated tenant mix
(:func:`repro.tenancy.whale_mix` — one bursty whale with 60% of the
load, a mid-size tenant, three minnows) on 2-replica TDX and cGPU
fleets under both admission policies, with shared-prefix KV sharing,
and reads off each tenant's invoice and tail latency.

Findings:

* On the saturated CPU-TEE fleet, FCFS lets the whale's bursts starve
  the tail: minnows see p99 TTFTs in the same tens-of-seconds band as
  the whale itself.  WFQ cuts every small tenant's p99 by multiples
  while costing the whale almost nothing — weighted fairness is a
  scheduling-policy fix, not a hardware one.
* The overprovisioned cGPU fleet never queues, so WFQ and FCFS
  coincide and every tenant meets its SLO — but each tenant pays the
  cGPU premium: the whale's $/Mtok is ~2.3x its TDX invoice, the same
  cost ranking the paper finds per instance.
* Tenant invoices are integer cents that exactly partition the fleet
  bill in every cell of the matrix.
"""

from helpers import print_rows, run_once

from repro.tenancy import run_tenant_fleet, whale_mix

KINDS = ("tdx", "cgpu")
ADMISSIONS = ("fcfs", "wfq")
MINNOWS = ("minnow-a", "minnow-b", "minnow-c")


def regenerate() -> dict:
    population = whale_mix(total_requests=120, rate_per_s=6.0, seed=3,
                           prefix_tokens=64)
    cells = {}
    for kind in KINDS:
        for admission in ADMISSIONS:
            cells[(kind, admission)] = run_tenant_fleet(
                population, kind=kind, count=2, engine="event",
                admission=admission, kv_isolation="shared-prefix",
                max_batch=8, kv_capacity_tokens=16384)
    rows = []
    for (kind, admission), report in cells.items():
        for usage in report.tenants:
            rows.append({
                "kind": kind,
                "admission": admission,
                "tenant": usage.name,
                "p99_ttft_s": usage.ttft_p99_s,
                "slo_attainment": usage.slo_attainment,
                "bill_cents": usage.bill_cents,
                "usd_per_mtok": usage.usd_per_mtok,
            })
    return {"rows": rows, "cells": cells}


def test_ext_tenancy(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows("Whale-mix tenancy matrix (2 replicas, shared-prefix KV)",
               data["rows"])
    cells = data["cells"]

    def p99(kind, admission, name):
        return next(u.ttft_p99_s for u in cells[(kind, admission)].tenants
                    if u.name == name)

    # Invoices exactly partition the fleet bill in every cell.
    for report in cells.values():
        assert report.total_bill_cents == round(report.fleet.cost_usd * 100)
        assert all(u.bill_cents >= 0 for u in report.tenants)

    # Saturated TDX fleet: WFQ protects the tail.  Every minnow's p99
    # TTFT improves by at least 2x over FCFS, and the mid tenant
    # improves too...
    for name in MINNOWS:
        assert p99("tdx", "wfq", name) * 2 < p99("tdx", "fcfs", name)
    assert p99("tdx", "wfq", "mid") < p99("tdx", "fcfs", "mid")

    # ...while the whale (weight 4, 60% of load) barely moves: fairness
    # for the tail is nearly free for the tenant paying for priority.
    whale_fcfs = p99("tdx", "fcfs", "whale")
    whale_wfq = p99("tdx", "wfq", "whale")
    assert abs(whale_wfq - whale_fcfs) / whale_fcfs < 0.2

    # Overprovisioned cGPU fleet: no queueing, so admission policy is
    # moot and every tenant meets its SLO.
    for admission in ADMISSIONS:
        report = cells[("cgpu", admission)]
        assert all(u.slo_attainment == 1.0 for u in report.tenants)
        assert all(u.ttft_p99_s < 1.0 for u in report.tenants)

    # The paper's cost ranking survives multi-tenancy: the cGPU fleet
    # charges ~2-4x more per good token than the TDX fleet that serves
    # the same mix.
    for admission in ADMISSIONS:
        ratio = (cells[("cgpu", admission)].fleet.usd_per_mtok
                 / cells[("tdx", admission)].fleet.usd_per_mtok)
        assert 1.5 < ratio < 4.0

    # Prefix sharing is live: whale+mid pin once per replica (4 misses)
    # and every later request of theirs hits.
    report = cells[("tdx", "wfq")]
    assert report.prefix_misses == 4
    assert report.prefix_hits > 10 * report.prefix_misses
