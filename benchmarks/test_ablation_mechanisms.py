"""Mechanism ablations — decomposing the TDX and cGPU overheads.

DESIGN.md calls out one model term per overhead source the paper names
(memory encryption, nested EPT walks, virtualization tax, enclave exits,
launch taxes).  This bench disables them one at a time and reports each
mechanism's contribution, verifying that (a) every mechanism contributes
a nonnegative share and (b) memory encryption is the dominant TEE cost
for the memory-bound decode — the paper's §IV-B conclusion.
"""

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import cpu_deployment, gpu_deployment
from repro.core.overhead import throughput_overhead
from repro.engine.placement import Deployment, Workload
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16
from repro.tee.base import MechanismToggles

TOGGLE_FIELDS = ("memory_encryption", "nested_walks", "virtualization_tax",
                 "upi_crypto", "enclave_exits", "step_fixed")


def with_toggles(deployment: Deployment, **off: bool) -> Deployment:
    toggles = MechanismToggles(**{field: field not in off
                                  for field in TOGGLE_FIELDS})
    return Deployment(placement=deployment.placement,
                      backend=deployment.backend,
                      framework=deployment.framework, toggles=toggles)


def regenerate() -> dict:
    workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=1, input_tokens=1024,
                        output_tokens=64)
    base = simulate_cached(workload, cpu_deployment(
        "baremetal", sockets_used=1))
    tdx_full = simulate_cached(workload, cpu_deployment(
        "tdx", sockets_used=1))
    full_overhead = throughput_overhead(tdx_full, base)

    rows = []
    contributions = {}
    for mechanism in ("memory_encryption", "nested_walks",
                      "virtualization_tax"):
        ablated = simulate_cached(workload, with_toggles(
            cpu_deployment("tdx", sockets_used=1), **{mechanism: True}))
        remaining = throughput_overhead(ablated, base)
        contributions[mechanism] = full_overhead - remaining
        rows.append({
            "mechanism_disabled": mechanism,
            "remaining_overhead_pct": 100 * remaining,
            "mechanism_contribution_pct": 100 * contributions[mechanism],
        })

    # cGPU: fixed step tax vs proportional rate derate.
    gpu_workload = workload.with_(batch_size=4)
    gpu = simulate_cached(gpu_workload, gpu_deployment(confidential=False))
    cgpu = simulate_cached(gpu_workload, gpu_deployment(confidential=True))
    cgpu_no_fixed = simulate_cached(gpu_workload, with_toggles(
        gpu_deployment(confidential=True), step_fixed=True))
    cgpu_full = throughput_overhead(cgpu, gpu, include_prefill=True)
    cgpu_wo_fixed = throughput_overhead(cgpu_no_fixed, gpu,
                                        include_prefill=True)
    rows.append({
        "mechanism_disabled": "cgpu_step_tax",
        "remaining_overhead_pct": 100 * cgpu_wo_fixed,
        "mechanism_contribution_pct": 100 * (cgpu_full - cgpu_wo_fixed),
    })
    return {"rows": rows, "full": full_overhead,
            "contributions": contributions,
            "cgpu": (cgpu_full, cgpu_wo_fixed)}


def test_ablation_mechanisms(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows("Mechanism ablations (TDX bs=1 decode + cGPU)", data["rows"])
    print(f"full TDX overhead: {100 * data['full']:.1f}%")
    contributions = data["contributions"]

    # Every mechanism contributes a nonnegative share.
    assert all(value >= -1e-6 for value in contributions.values())

    # Memory encryption is the single largest TEE cost for the
    # memory-bound decode (§IV-B: "memory encryption is a major
    # contributor to the overheads").
    assert contributions["memory_encryption"] == max(contributions.values())
    assert contributions["memory_encryption"] > 0.02

    # The cGPU fixed step tax is a real, positive share of its overhead.
    cgpu_full, cgpu_wo_fixed = data["cgpu"]
    assert cgpu_full > cgpu_wo_fixed >= 0.0
