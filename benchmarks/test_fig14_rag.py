"""Fig. 14 — mean evaluation time of RAG systems in TDX on EMR2.

BM25, reranked BM25, and SBERT dense retrieval over a BEIR-like corpus,
with the retrieval engine (our Elasticsearch stand-in) and the encoders
running entirely inside TDX.  Paper: 6-7% degradation — the same level
as LLM inference (Insight 12).
"""

from helpers import print_rows, run_once

from repro.core.experiment import cpu_deployment
from repro.rag.corpus import generate_corpus
from repro.rag.evaluate import RAG_METHODS, build_retrievers, evaluate_pipeline


def regenerate() -> dict:
    corpus = generate_corpus(num_docs=1000, num_topics=12, num_queries=30,
                             seed=42)
    retrievers = build_retrievers(corpus)
    baseline = cpu_deployment("baremetal", sockets_used=1)
    tdx = cpu_deployment("tdx", sockets_used=1)
    rows = []
    overheads = {}
    for method in RAG_METHODS:
        base = evaluate_pipeline(corpus, method, baseline,
                                 retrievers=retrievers, seed=1)
        secure = evaluate_pipeline(corpus, method, tdx,
                                   retrievers=retrievers, seed=1001)
        overheads[method] = (secure.mean_query_time_s
                             / base.mean_query_time_s - 1.0)
        rows.append({
            "method": method,
            "baremetal_ms_per_query": base.mean_query_time_s * 1e3,
            "tdx_ms_per_query": secure.mean_query_time_s * 1e3,
            "tdx_overhead_pct": 100 * overheads[method],
            "ndcg_at_10": base.mean_ndcg_at_10,
        })
    return {"rows": rows, "overheads": overheads}


def test_fig14_rag(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows("Fig. 14: RAG pipelines in TDX (EMR2)", data["rows"])
    overheads = data["overheads"]

    # All three retrieval models land in an LLM-like overhead band
    # around the paper's 6-7%.
    for method, value in overheads.items():
        assert 0.025 <= value <= 0.12, (method, value)

    # The pipelines actually retrieve: quality well above random.
    ndcg = {row["method"]: row["ndcg_at_10"] for row in data["rows"]}
    assert min(ndcg.values()) > 0.3

    # Reranked BM25 is the slowest pipeline (50 cross-encoder passes).
    times = {row["method"]: row["tdx_ms_per_query"] for row in data["rows"]}
    assert times["bm25-reranked"] == max(times.values())
