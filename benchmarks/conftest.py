"""pytest conftest for the benchmark directory (helpers live in helpers.py)."""

import pytest

from helpers import simulate_cached

from repro.core.profiling import cache_report


@pytest.fixture(scope="session")
def sim():
    """Session-shared cached simulator (see helpers.simulate_cached)."""
    return simulate_cached


def pytest_terminal_summary(terminalreporter):
    """Show how much of the benchmark run came out of the memo caches."""
    terminalreporter.write_sep("-", "simulator cache report")
    terminalreporter.write_line(cache_report())
