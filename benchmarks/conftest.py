"""pytest conftest for the benchmark directory (helpers live in helpers.py)."""
