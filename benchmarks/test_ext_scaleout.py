"""§V-D4 extension — confidential multi-GPU scaling.

The paper argues (without a testbed to measure it) that scaling
confidential H100s is inefficient: NVLink is unprotected, so CC-mode
traffic routes through the host at ~3 GB/s vs ~40 GB/s, which is costly
for throughput-hungry tensor parallelism; IPsec costs up to 90% across
hosts.  This bench quantifies the projection with the scale-out model,
including the B100 case where protected NVLink restores scaling.
"""

from helpers import print_rows, run_once

from repro.engine.placement import Workload
from repro.hardware.gpu import B100, H100_NVL
from repro.llm.config import LLAMA2_70B
from repro.llm.datatypes import BFLOAT16
from repro.scaleout.multigpu import simulate_multi_gpu

BATCHES = (1, 8, 32)


def regenerate() -> dict:
    rows = []
    results = {}
    for batch in BATCHES:
        workload = Workload(LLAMA2_70B, BFLOAT16, batch_size=batch,
                            input_tokens=512, output_tokens=128)
        for label, confidential, gpu in (
                ("h100", False, H100_NVL),
                ("c-h100", True, H100_NVL),
                ("c-b100", True, B100)):
            result = simulate_multi_gpu(workload, 2, confidential, gpu=gpu)
            results[(batch, label)] = result
            rows.append({
                "batch": batch,
                "config": f"2x {label}",
                "link": result.link.kind.value,
                "tput_tok_s": result.throughput_tok_s,
                "comm_fraction_pct": 100 * result.comm_fraction,
            })
    return {"rows": rows, "results": results}


def test_ext_scaleout(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows("Confidential multi-GPU scaling (Llama2-70B, TP=2)",
               data["rows"])
    results = data["results"]

    for batch in BATCHES:
        plain = results[(batch, "h100")]
        secure = results[(batch, "c-h100")]
        b100 = results[(batch, "c-b100")]
        # Confidential H100 pairs lose throughput to CPU routing...
        assert secure.throughput_tok_s < plain.throughput_tok_s
        # ...and the loss grows with batch (more all-reduce payload).
        if batch >= 8:
            assert secure.comm_fraction > 0.2
        # B100's protected NVLink keeps communication negligible.
        assert b100.comm_fraction < 0.05

    # At batch 32 the confidential H100 pair loses a large share of its
    # scaling; B100 does not.
    loss = 1 - (results[(32, "c-h100")].throughput_tok_s
                / results[(32, "h100")].throughput_tok_s)
    assert loss > 0.3
