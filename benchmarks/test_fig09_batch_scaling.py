"""Fig. 9 — next-token latency and throughput vs batch size on EMR2.

128 in/out tokens, beam 1; throughput on one socket, latency on two.
Paper: as batch grows the workload becomes compute-bound and TDX's
overhead (memory encryption) shrinks — int8 from 9-11% to <=6% by batch
64, bf16 from 7-10% to 4-7% at saturation; latency shows no such strong
correlation (socket-interconnect traffic grows too).
"""

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import cpu_deployment
from repro.core.overhead import latency_overhead, throughput_overhead
from repro.engine.placement import Workload
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16, INT8

BATCHES = (1, 4, 16, 64, 128, 256, 512)


def regenerate() -> dict:
    rows = []
    series = {}
    for dtype in (BFLOAT16, INT8):
        for batch in BATCHES:
            workload = Workload(LLAMA2_7B, dtype, batch_size=batch,
                                input_tokens=128, output_tokens=128)
            base_1s = simulate_cached(workload, cpu_deployment(
                "baremetal", sockets_used=1))
            tdx_1s = simulate_cached(workload, cpu_deployment(
                "tdx", sockets_used=1))
            base_2s = simulate_cached(workload, cpu_deployment(
                "baremetal", sockets_used=2))
            tdx_2s = simulate_cached(workload, cpu_deployment(
                "tdx", sockets_used=2))
            tput_overhead = throughput_overhead(tdx_1s, base_1s)
            series[(dtype.name, batch)] = tput_overhead
            rows.append({
                "dtype": dtype.name,
                "batch": batch,
                "baremetal_tput_tok_s": base_1s.decode_throughput_tok_s,
                "tdx_tput_overhead_pct": 100 * tput_overhead,
                "tdx_2s_latency_ms": tdx_2s.next_token_latency_s * 1e3,
                "tdx_2s_lat_overhead_pct": 100 * latency_overhead(
                    tdx_2s, base_2s, filtered=False),
            })
    return {"rows": rows, "series": series}


def test_fig09_batch_scaling(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows("Fig. 9: batch-size scaling (EMR2)", data["rows"])
    series = data["series"]

    for dtype in ("bf16", "int8"):
        small = series[(dtype, 1)]
        large = series[(dtype, 512)]
        assert small > large, dtype
        assert 0.07 <= small <= 0.115, (dtype, small)

    # int8: overheads drop to <=6.5% by batch 64 (paper: <=6%).
    assert series[("int8", 64)] <= 0.065
    # bf16 at saturation inside the paper's 4-7% band.
    assert 0.04 <= series[("bf16", 512)] <= 0.07

    # Throughput saturates: going 256 -> 512 gains almost nothing.
    rows = {(row["dtype"], row["batch"]): row for row in data["rows"]}
    for dtype in ("bf16", "int8"):
        gain = (rows[(dtype, 512)]["baremetal_tput_tok_s"]
                / rows[(dtype, 256)]["baremetal_tput_tok_s"])
        assert gain < 1.10
