"""§IV-A ablation — sub-NUMA clustering.

SNC splits a socket into NUMA sub-domains to help NUMA-aware ML
workloads, but TEE drivers do not understand the sub-domains and place
memory in the wrong cluster.  Paper: enabling SNC raised TDX overhead
more than eight times, from ~5% to ~42%; the paper therefore disables
SNC for all other experiments.
"""

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import cpu_deployment
from repro.core.overhead import throughput_overhead
from repro.engine.placement import Workload
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16


def regenerate() -> list[dict]:
    workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=6, input_tokens=1024,
                        output_tokens=64, beam_size=4)
    rows = []
    for clusters in (1, 2):
        base = simulate_cached(workload, cpu_deployment(
            "baremetal", sockets_used=1, snc_clusters=clusters))
        tdx = simulate_cached(workload, cpu_deployment(
            "tdx", sockets_used=1, snc_clusters=clusters))
        rows.append({
            "snc_clusters": clusters,
            "baremetal_tput_tok_s": base.decode_throughput_tok_s,
            "tdx_tput_tok_s": tdx.decode_throughput_tok_s,
            "tdx_overhead_pct": 100 * throughput_overhead(tdx, base),
        })
    return rows


def test_ablation_snc(benchmark):
    rows = run_once(benchmark, regenerate)
    print_rows("SNC ablation (TDX, single socket)", rows)
    overhead = {row["snc_clusters"]: row["tdx_overhead_pct"] for row in rows}
    # SNC off: the normal single-digit band.
    assert overhead[1] < 12.0
    # SNC on: a multiple of the baseline overhead, tens of percent.
    assert overhead[2] > 3 * overhead[1]
    assert overhead[2] > 30.0
    # SNC does not hurt the NUMA-aware bare-metal baseline.
    tputs = {row["snc_clusters"]: row["baremetal_tput_tok_s"] for row in rows}
    assert tputs[2] >= tputs[1]
