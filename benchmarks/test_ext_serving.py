"""Serving extension — continuous batching SLAs under TEEs.

The paper measures static batches; production deployments serve arrival
streams with vLLM-style continuous batching.  This bench serves the
same stream on bare metal, TDX, and the (c)GPU, reporting TTFT/e2e
percentiles and checking that the TEE's serving-level overhead stays in
the same single-digit band as the static-batch experiments.
"""

from helpers import print_rows, run_once

from repro.core.experiment import cpu_deployment, gpu_deployment
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16
from repro.serving.scheduler import ContinuousBatchingScheduler, poisson_stream

CONFIGS = ("baremetal", "tdx", "gpu", "cgpu")


def regenerate() -> dict:
    # A near-saturating arrival rate: an unsaturated server absorbs TEE
    # overheads into idle gaps, hiding the capacity cost.
    requests = poisson_stream(40, rate_per_s=8.0, mean_prompt=256,
                              mean_output=64, seed=17)
    rows = []
    reports = {}
    for config in CONFIGS:
        if config in ("gpu", "cgpu"):
            deployment = gpu_deployment(confidential=config == "cgpu")
        else:
            deployment = cpu_deployment(config, sockets_used=1)
        scheduler = ContinuousBatchingScheduler(
            deployment, LLAMA2_7B, BFLOAT16, kv_capacity_tokens=200_000,
            max_batch=32)
        report = scheduler.run(requests)
        reports[config] = report
        rows.append({
            "backend": config,
            "throughput_tok_s": report.throughput_tok_s,
            "ttft_p50_s": report.ttft_percentile(50),
            "ttft_p95_s": report.ttft_percentile(95),
            "e2e_p95_s": report.e2e_percentile(95),
            "mean_batch": report.mean_batch_occupancy,
            "preemptions": report.total_preemptions,
        })
    return {"rows": rows, "reports": reports}


def test_ext_serving(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows("Continuous-batching serving (Llama2-7B, 40 requests)",
               data["rows"])
    reports = data["reports"]

    # TDX's serving-level cost stays in the static-batch band.
    cpu_ratio = (reports["tdx"].makespan_s
                 / reports["baremetal"].makespan_s)
    assert 1.02 < cpu_ratio < 1.15

    # cGPU pays its CC tax but remains far faster than CPU TEEs.
    gpu_ratio = reports["cgpu"].makespan_s / reports["gpu"].makespan_s
    assert 1.0 < gpu_ratio < 1.15
    assert (reports["cgpu"].throughput_tok_s
            > 2 * reports["tdx"].throughput_tok_s)

    # Tail latencies ordered the same way.
    assert (reports["cgpu"].e2e_percentile(95)
            < reports["tdx"].e2e_percentile(95))
