"""§V-D1 extension — hybrid host-offloaded GPUs vs CPU TEEs.

The paper notes that when a model spills to host memory, AMX CPUs
already outperform GPUs, and confidential compute widens the gap
because every offloaded byte crosses the encrypted PCIe bounce buffer.
This bench runs Llama2-70B (which does not fit one H100) offloaded vs a
two-socket TDX deployment.
"""

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import cpu_deployment
from repro.engine.placement import Workload
from repro.llm.config import LLAMA2_70B
from repro.llm.datatypes import BFLOAT16
from repro.scaleout.offload import required_host_fraction, simulate_offloaded


def regenerate() -> dict:
    workload = Workload(LLAMA2_70B, BFLOAT16, batch_size=1,
                        input_tokens=512, output_tokens=64)
    fraction = required_host_fraction(workload)
    plain = simulate_offloaded(workload, fraction, confidential=False)
    secure = simulate_offloaded(workload, fraction, confidential=True)
    tdx = simulate_cached(workload, cpu_deployment("tdx",
                                                       sockets_used=2))
    rows = [
        {"config": "gpu+offload", "tput_tok_s": plain.throughput_tok_s,
         "transfer_bound": plain.transfer_bound},
        {"config": "cgpu+offload", "tput_tok_s": secure.throughput_tok_s,
         "transfer_bound": secure.transfer_bound},
        {"config": "tdx 2-socket", "tput_tok_s": tdx.decode_throughput_tok_s,
         "transfer_bound": False},
    ]
    return {"rows": rows, "fraction": fraction, "plain": plain,
            "secure": secure, "tdx": tdx}


def test_ext_offload_hybrid(benchmark):
    data = run_once(benchmark, regenerate)
    print(f"\nhost-offloaded weight fraction: {data['fraction']:.1%}")
    print_rows("Hybrid offload vs CPU TEE (Llama2-70B, bs=1)", data["rows"])

    # Offloading is transfer-bound in both postures.
    assert data["plain"].transfer_bound
    assert data["secure"].transfer_bound

    # Confidential offload pays the bounce buffer (several-fold).
    assert (data["plain"].throughput_tok_s
            > 3 * data["secure"].throughput_tok_s)

    # The CPU TEE beats both offloaded configurations.
    assert (data["tdx"].decode_throughput_tok_s
            > data["plain"].throughput_tok_s)
    assert (data["tdx"].decode_throughput_tok_s
            > 5 * data["secure"].throughput_tok_s)
