"""Fig. 4 — single-socket throughput and latency overheads on EMR1.

Throughput: batch 6, beam 4.  Latency: batch 1, beam 1.  Both at 1024
input / 128 output tokens, bf16 and int8.  Paper bands: Gramine-SGX
4.80-6.15%, TDX 5.51-10.68%, raw VM 1.82-5.38%, TDX-over-VM 3.02-7.01%;
int8 roughly halves latency at similar throughput; all systems stay
under the 200 ms/word reading-speed bar.
"""

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import cpu_deployment
from repro.core.metrics import latency_stats
from repro.core.overhead import latency_overhead, throughput_overhead
from repro.engine.placement import Workload
from repro.hardware.cpu import EMR1
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16, INT8

BACKENDS = ("baremetal", "vm", "sgx", "tdx")


def regenerate() -> list[dict]:
    rows = []
    for dtype in (BFLOAT16, INT8):
        throughput_runs = {}
        latency_runs = {}
        for backend in BACKENDS:
            deployment = cpu_deployment(backend, cpu=EMR1, sockets_used=1)
            throughput_runs[backend] = simulate_cached(
                Workload(LLAMA2_7B, dtype, 6, 1024, 128, beam_size=4),
                deployment)
            latency_runs[backend] = simulate_cached(
                Workload(LLAMA2_7B, dtype, 1, 1024, 128), deployment)
        for backend in BACKENDS:
            stats = latency_stats(latency_runs[backend].latency_samples_s)
            rows.append({
                "dtype": dtype.name,
                "backend": backend,
                "throughput_tok_s":
                    throughput_runs[backend].decode_throughput_tok_s,
                "latency_ms": stats.mean_s * 1e3,
                "tput_overhead_pct": 100 * throughput_overhead(
                    throughput_runs[backend], throughput_runs["baremetal"]),
                "lat_overhead_pct": 100 * latency_overhead(
                    latency_runs[backend], latency_runs["baremetal"]),
                "meets_200ms": stats.meets_reading_speed,
            })
    return rows


def test_fig04_single_socket(benchmark):
    rows = run_once(benchmark, regenerate)
    print_rows("Fig. 4: single-socket overheads (EMR1)", rows)
    by_key = {(row["dtype"], row["backend"]): row for row in rows}

    for dtype in ("bf16", "int8"):
        sgx = by_key[(dtype, "sgx")]["tput_overhead_pct"]
        tdx = by_key[(dtype, "tdx")]["tput_overhead_pct"]
        vm = by_key[(dtype, "vm")]["tput_overhead_pct"]
        assert 3.5 <= sgx <= 7.5, f"SGX {dtype}: {sgx}"
        assert 5.5 <= tdx <= 11.0, f"TDX {dtype}: {tdx}"
        assert 1.8 <= vm <= 5.5, f"VM {dtype}: {vm}"
        assert vm < sgx < tdx
        # TDX over VM within the paper's 3.02-7.01%.
        tdx_tput = by_key[(dtype, "tdx")]["throughput_tok_s"]
        vm_tput = by_key[(dtype, "vm")]["throughput_tok_s"]
        assert 0.030 <= vm_tput / tdx_tput - 1 <= 0.071

    # int8 nearly halves latency at similar throughput structure.
    for backend in BACKENDS:
        ratio = (by_key[("bf16", backend)]["latency_ms"]
                 / by_key[("int8", backend)]["latency_ms"])
        assert 1.6 < ratio < 2.3

    assert all(row["meets_200ms"] for row in rows)
