"""Table I — the systems summary matrix.

Regenerates the security/performance/cost comparison of SGX, TDX and the
H100 cGPU, with the single-resource overhead bands measured by this
reproduction substituted into the table.
"""

from helpers import run_once, simulate_cached

from repro.core.experiment import Experiment, cpu_deployment, gpu_deployment
from repro.core.overhead import throughput_overhead
from repro.core.summary import ALL_SUMMARIES, render_summary_table
from repro.engine.placement import Workload
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16, INT8
from repro.tee.security import CGPU_SECURITY, SGX_SECURITY, TDX_SECURITY


def regenerate() -> dict:
    bands: dict[str, list[float]] = {"sgx": [], "tdx": [], "cgpu": []}
    for dtype in (BFLOAT16, INT8):
        workload = Workload(LLAMA2_7B, dtype, batch_size=6,
                            input_tokens=1024, output_tokens=64, beam_size=4)
        outcome = Experiment(
            name="tab1", workload=workload,
            deployments={
                "baremetal": cpu_deployment("baremetal", sockets_used=1),
                "sgx": cpu_deployment("sgx", sockets_used=1),
                "tdx": cpu_deployment("tdx", sockets_used=1),
            }).run()
        bands["sgx"].append(outcome.overhead("sgx").throughput_overhead)
        bands["tdx"].append(outcome.overhead("tdx").throughput_overhead)
    for batch in (1, 64):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=batch,
                            input_tokens=512, output_tokens=64)
        gpu = simulate_cached(workload, gpu_deployment(confidential=False))
        cgpu = simulate_cached(workload, gpu_deployment(confidential=True))
        bands["cgpu"].append(throughput_overhead(cgpu, gpu,
                                                 include_prefill=True))
    measured = {name: (min(values), max(values))
                for name, values in bands.items()}
    table = render_summary_table(measured_bands=measured)
    return {"table": table, "measured": measured}


def test_table1_summary(benchmark):
    data = run_once(benchmark, regenerate)
    print("\n" + data["table"])
    measured = data["measured"]

    # Measured bands near the paper's Table I (~4-5%, ~5-10%, ~4-8%).
    assert 0.03 <= measured["sgx"][0] and measured["sgx"][1] <= 0.08
    assert 0.05 <= measured["tdx"][0] and measured["tdx"][1] <= 0.11
    assert 0.03 <= measured["cgpu"][0] and measured["cgpu"][1] <= 0.10

    # Security rows: CPU TEEs protect memory and scale-up, cGPU doesn't.
    assert TDX_SECURITY.stricter_than(CGPU_SECURITY)
    assert SGX_SECURITY.stricter_than(CGPU_SECURITY)

    # The rendered table carries every system column.
    for summary in ALL_SUMMARIES:
        assert summary.system in data["table"]
