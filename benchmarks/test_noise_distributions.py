"""Fig. 4's violin-plot aspect — per-token latency distributions.

The paper plots per-token statistics as violins and notes TEE-specific
outliers: "we noticed outliers for SGX and TDX, which we excluded in
the violin plots using a Z-score > 3 (~0.64% of samples) ... these do
not contribute to the discussion but create considerable noise due to
variability in memory encryption."  This bench regenerates the
distribution summaries and checks the outlier process.
"""

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import cpu_deployment
from repro.core.metrics import latency_stats, outlier_fraction
from repro.engine.placement import Workload
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16

BACKENDS = ("baremetal", "vm", "sgx", "tdx")


def regenerate() -> dict:
    # Many tokens for stable distribution statistics (paper: >=1000).
    workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=1, input_tokens=64,
                        output_tokens=2048)
    rows = []
    stats = {}
    for backend in BACKENDS:
        result = simulate_cached(
            workload, cpu_deployment(backend, sockets_used=1), seed=21)
        samples = result.latency_samples_s
        summary = latency_stats(samples)
        stats[backend] = {
            "summary": summary,
            "outliers": outlier_fraction(samples),
            "cv": summary.std_s / summary.mean_s,
        }
        rows.append({
            "backend": backend,
            "mean_ms": summary.mean_s * 1e3,
            "median_ms": summary.median_s * 1e3,
            "p95_ms": summary.p95_s * 1e3,
            "cv_pct": 100 * stats[backend]["cv"],
            "outliers_removed_pct": 100 * stats[backend]["outliers"],
        })
    return {"rows": rows, "stats": stats}


def test_noise_distributions(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows("Per-token latency distributions (2048 tokens, EMR2)",
               data["rows"])
    stats = data["stats"]

    # TEEs produce Z>3 outliers near the paper's ~0.64%; baselines don't.
    for backend in ("sgx", "tdx"):
        assert 0.002 < stats[backend]["outliers"] < 0.02, backend
    for backend in ("baremetal", "vm"):
        assert stats[backend]["outliers"] < 0.002, backend

    # TEE distributions are visibly noisier (memory-encryption jitter).
    assert stats["tdx"]["cv"] > 1.5 * stats["baremetal"]["cv"]
    assert stats["sgx"]["cv"] > 1.5 * stats["vm"]["cv"]

    # After filtering, the means still order correctly.
    means = {backend: stats[backend]["summary"].mean_s
             for backend in BACKENDS}
    assert means["baremetal"] < means["vm"] < means["sgx"] < means["tdx"]
