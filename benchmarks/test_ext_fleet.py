"""Fleet extension — capacity planning and $/Mtok at a TTFT SLO.

The paper prices single instances; operators buy fleets.  This bench
runs the capacity-planning sweep from :mod:`repro.fleet` over the same
fixed arrival trace the ``golden.fleet_capacity`` audit check pins:
grow TDX and cGPU fleets one replica at a time until p99 TTFT meets a
2 s SLO, then compare what the SLO actually costs per million tokens.

The cluster-scale finding mirrors the per-instance one: the cGPU meets
the SLO with fewer replicas (often one), but the CPU-TEE fleet that
matches it is still ~2x cheaper per token — TEE cost rankings survive
horizontal scaling.
"""

from helpers import print_rows, run_once

from repro.fleet import capacity_sweep, replica_spec, trace_replay
from repro.validate.fleet import CAPACITY_SLO_TTFT_S, CAPACITY_TRACE

KINDS = ("tdx", "cgpu")


def regenerate() -> dict:
    requests = trace_replay(list(CAPACITY_TRACE))
    specs = {kind: replica_spec(kind, max_batch=16,
                                kv_capacity_tokens=65536) for kind in KINDS}
    plans = capacity_sweep(list(specs.values()), requests,
                           slo_ttft_s=CAPACITY_SLO_TTFT_S, max_replicas=6)
    rows = []
    for kind, plan in plans.items():
        for point in plan.points:
            rows.append({
                "kind": kind,
                "replicas": point.replicas,
                "p99_ttft_s": point.p99_ttft_s,
                "attainment": point.attainment,
                "usd_per_mtok": point.usd_per_mtok,
                "meets_slo": point.meets_slo,
            })
    return {"rows": rows, "plans": plans}


def test_ext_fleet(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows(f"Fleet capacity sweep (p99 TTFT <= {CAPACITY_SLO_TTFT_S}s, "
               f"{len(CAPACITY_TRACE)} requests)", data["rows"])
    plans = data["plans"]

    # Both fleets can meet the SLO within the sweep.
    assert all(plans[kind].replicas_needed is not None for kind in KINDS)

    # The cGPU is faster per instance: it never needs more replicas,
    # and here a single one suffices while TDX needs several.
    assert plans["cgpu"].replicas_needed == 1
    assert plans["tdx"].replicas_needed > 1

    # ...yet the SLO-sized TDX fleet is still ~2x cheaper per token —
    # the paper's per-instance cost ranking survives horizontal scaling.
    tdx_cost = plans["tdx"].usd_per_mtok_at_slo
    cgpu_cost = plans["cgpu"].usd_per_mtok_at_slo
    assert 1.5 < cgpu_cost / tdx_cost < 4.0

    # Under-provisioned points miss the SLO; the plan point meets it.
    for kind in KINDS:
        assert all(not p.meets_slo for p in plans[kind].points[:-1])
        assert plans[kind].plan_point.meets_slo
        assert plans[kind].plan_point.p99_ttft_s <= CAPACITY_SLO_TTFT_S

    # The cGPU's tail advantage persists even against the SLO-sized
    # (multi-replica) TDX fleet.
    assert (plans["cgpu"].plan_point.p99_ttft_s
            < plans["tdx"].plan_point.p99_ttft_s)
