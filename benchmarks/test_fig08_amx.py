"""Fig. 8 — AMX vs no-AMX across batch sizes on EMR2.

Llama2-7B, 128 in/out tokens, beam 1.  Overheads follow the paper's
convention: relative to a *VM running AMX*.  Paper: bf16 AMX advantage
is 1-4% when memory-bound and grows to hundreds of percent with batch
size (more compute); AMX also lowers TDX's apparent overhead; int8
without AMX collapses (+96% throughput overhead reported, +1700%
latency on two sockets — our mechanistic model reproduces the latency
collapse and overshoots the throughput one; see EXPERIMENTS.md).
"""

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import cpu_deployment
from repro.core.overhead import latency_overhead, throughput_overhead
from repro.engine.placement import Workload
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16, INT8

BATCHES = (1, 4, 16, 64, 256)


def regenerate() -> dict:
    rows = []
    advantage = {}
    tdx_overheads = {}
    for batch in BATCHES:
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=batch,
                            input_tokens=128, output_tokens=128)
        vm_amx = simulate_cached(workload, cpu_deployment(
            "vm", sockets_used=1))
        vm_noamx = simulate_cached(workload, cpu_deployment(
            "vm", sockets_used=1, amx_enabled=False))
        tdx_amx = simulate_cached(workload, cpu_deployment(
            "tdx", sockets_used=1))
        tdx_noamx = simulate_cached(workload, cpu_deployment(
            "tdx", sockets_used=1, amx_enabled=False))
        advantage[batch] = (vm_amx.decode_throughput_tok_s
                            / vm_noamx.decode_throughput_tok_s)
        tdx_overheads[batch] = (
            throughput_overhead(tdx_amx, vm_amx),
            throughput_overhead(tdx_noamx, vm_amx),
        )
        rows.append({
            "batch": batch,
            "amx_speedup_x": advantage[batch],
            "tdx_ovh_amx_pct": 100 * tdx_overheads[batch][0],
            "tdx_ovh_noamx_pct": 100 * tdx_overheads[batch][1],
        })

    # int8 fallback anchors.
    int8_tput = Workload(LLAMA2_7B, INT8, batch_size=64, input_tokens=128,
                         output_tokens=64)
    amx_t = simulate_cached(int8_tput, cpu_deployment("vm",
                                                          sockets_used=1))
    no_t = simulate_cached(int8_tput, cpu_deployment(
        "vm", sockets_used=1, amx_enabled=False))
    int8_lat = Workload(LLAMA2_7B, INT8, batch_size=1, input_tokens=128,
                        output_tokens=64)
    amx_l = simulate_cached(int8_lat, cpu_deployment("vm",
                                                         sockets_used=2))
    no_l = simulate_cached(int8_lat, cpu_deployment(
        "vm", sockets_used=2, amx_enabled=False))
    int8 = {
        "tput_overhead": throughput_overhead(no_t, amx_t),
        "lat_overhead": latency_overhead(no_l, amx_l, filtered=False),
    }
    return {"rows": rows, "advantage": advantage,
            "tdx_overheads": tdx_overheads, "int8": int8}


def test_fig08_amx(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows("Fig. 8: AMX vs no-AMX (bf16, EMR2)", data["rows"])
    print(f"int8 no-AMX: throughput overhead "
          f"{100 * data['int8']['tput_overhead']:.0f}%, "
          f"two-socket latency overhead "
          f"{100 * data['int8']['lat_overhead']:.0f}%")

    advantage = data["advantage"]
    # Memory-bound small batches: near parity (paper: 1-4%).
    assert 1.0 <= advantage[1] <= 1.06
    # Compute-bound large batches: hundreds of percent.
    assert advantage[256] > 1.8
    assert advantage[256] > advantage[1]

    # AMX lowers the apparent TDX overhead at every batch size.
    for batch in BATCHES:
        with_amx, without_amx = data["tdx_overheads"][batch]
        assert with_amx <= without_amx + 1e-9

    # int8 fallback: latency collapse ~17x (paper: +1700%).
    assert data["int8"]["lat_overhead"] > 9.0
    # Throughput collapse at least the paper's +96%.
    assert data["int8"]["tput_overhead"] > 0.9
