"""Fig. 3 — CPU framework microbenchmark on EMR1.

Llama2-7B, 1024 input / 128 output tokens, batch and beam 1.  Paper:
IPEX is the fastest (AMX + oneCCL); vLLM is ~50% slower; Hugging Face
~100% slower; fp32 variants slower than bf16; llama.cpp in between but
behind IPEX.
"""

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import cpu_deployment
from repro.engine.placement import Workload
from repro.hardware.cpu import EMR1
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16, FLOAT32

CASES = (
    ("hf-f32", "hf", FLOAT32),
    ("hf-bf16", "hf", BFLOAT16),
    ("vllm-f32", "vllm-cpu", FLOAT32),
    ("vllm-bf16", "vllm-cpu", BFLOAT16),
    ("llamacpp-mixed", "llamacpp", BFLOAT16),
    ("ipex-bf16", "ipex", BFLOAT16),
)


def regenerate() -> list[dict]:
    workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=1, input_tokens=1024,
                        output_tokens=128)
    rows = []
    for label, framework, dtype in CASES:
        result = simulate_cached(
            workload.with_(dtype=dtype),
            cpu_deployment("baremetal", cpu=EMR1, framework=framework,
                           sockets_used=1))
        rows.append({"backend": label,
                     "wall_runtime_s": result.total_time_s})
    return rows


def test_fig03_frameworks(benchmark):
    rows = run_once(benchmark, regenerate)
    print_rows("Fig. 3: framework microbenchmark (1024/128, bs=1, EMR1)",
               rows)
    runtime = {row["backend"]: row["wall_runtime_s"] for row in rows}
    assert runtime["ipex-bf16"] == min(runtime.values())
    assert 1.3 < runtime["vllm-bf16"] / runtime["ipex-bf16"] < 2.5
    assert 1.8 < runtime["hf-bf16"] / runtime["ipex-bf16"] < 3.5
    assert runtime["hf-f32"] > runtime["hf-bf16"]
    assert runtime["vllm-f32"] > runtime["vllm-bf16"]
    assert runtime["ipex-bf16"] < runtime["llamacpp-mixed"]
