"""Fig. 7 — per-decoder-block-layer duration and TDX overhead.

Traced single-socket inference of 128 in/out tokens at batch 4 on EMR2.
Paper: decoder blocks take ~99.9% of step time; the layer norms show the
largest *relative* overheads but only ~3% of block time; self-attention
and the linear-SiLU MLP dominate raw cost and carry the memory-
encryption overhead.
"""

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import cpu_deployment
from repro.engine.placement import Workload
from repro.engine.trace import (
    block_layer_summary,
    decoder_block_share,
    layer_overheads,
)
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16


def regenerate() -> dict:
    workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=4, input_tokens=128,
                        output_tokens=128)
    traces = {}
    for backend in ("baremetal", "tdx"):
        result = simulate_cached(
            workload, cpu_deployment(backend, sockets_used=1),
            record_steps=True)
        traces[backend] = result.decode_trace()
    summary = block_layer_summary(traces["tdx"])
    overheads = layer_overheads(traces["tdx"], traces["baremetal"])
    rows = [{
        "layer": name,
        "mean_duration_us": summary[name].mean_duration_s * 1e6,
        "share_of_block_pct": 100 * summary[name].share_of_block,
        "tdx_overhead_pct": 100 * overheads[name],
    } for name in summary]
    return {"rows": rows, "summary": summary, "overheads": overheads,
            "block_share": decoder_block_share(traces["tdx"])}


def test_fig07_block_breakdown(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows("Fig. 7: decoder-block layer breakdown (TDX, EMR2)",
               data["rows"])
    summary, overheads = data["summary"], data["overheads"]

    # Decoder blocks dominate the step.
    assert data["block_share"] > 0.9

    # Self-attention and the SiLU MLP carry the bulk of block time.
    heavy = (summary["self_attention"].share_of_block
             + summary["gate_up_proj"].share_of_block
             + summary["down_proj"].share_of_block)
    assert heavy > 0.6

    # The layer norms are a small share of block time...
    norm_share = (summary["input_layernorm"].share_of_block
                  + summary["post_attention_layernorm"].share_of_block)
    assert norm_share < 0.08
    # ...and every layer pays a positive TDX overhead.
    assert min(overheads.values()) > 0.0
    # Memory-heavy layers pay more than compute-only elementwise ops.
    assert overheads["self_attention"] > 0.02
