"""Fig. 13 — cost of generation vs input size at batch 4 on EMR2.

128 output tokens, bf16, single socket, best core count per point;
throughput includes the first token.  Paper: CPU TEEs are considerably
more sensitive to input size than cGPUs — the attention cost grows
quadratically with input — so the CPU cost advantage collapses from a
large positive margin to negative within a few doublings of the input.
"""

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import cpu_deployment, gpu_deployment
from repro.cost.efficiency import best_cpu_point, cpu_cost_point, gpu_cost_point
from repro.cost.pricing import GCP_SPOT_US_EAST1
from repro.engine.placement import Workload
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16

INPUTS = (32, 64, 128, 256, 512, 1024, 2048)
CORES = (8, 16, 24, 32, 48)


def regenerate() -> dict:
    rows = []
    advantage = {}
    for input_len in INPUTS:
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=4,
                            input_tokens=input_len, output_tokens=128)
        points = []
        for cores in CORES:
            tdx = simulate_cached(workload, cpu_deployment(
                "tdx", sockets_used=1, cores_per_socket_used=cores))
            points.append(cpu_cost_point(tdx, vcpus=cores,
                                         catalog=GCP_SPOT_US_EAST1))
        best = best_cpu_point(points)
        cgpu = simulate_cached(workload, gpu_deployment())
        gpu_point = gpu_cost_point(cgpu, GCP_SPOT_US_EAST1)
        advantage[input_len] = gpu_point.usd_per_mtok / best.usd_per_mtok - 1
        rows.append({
            "input_tokens": input_len,
            "best_cpu_cores": best.vcpus,
            "cpu_usd_per_mtok": best.usd_per_mtok,
            "cgpu_usd_per_mtok": gpu_point.usd_per_mtok,
            "cpu_advantage_pct": 100 * advantage[input_len],
        })
    return {"rows": rows, "advantage": advantage}


def test_fig13_input_cost(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows("Fig. 13: input-size cost scaling (bs=4, EMR2)", data["rows"])
    advantage = data["advantage"]

    # Strong CPU advantage at small inputs (paper reports +86%).
    assert advantage[32] > 0.6

    # Monotone decline with input size...
    ordered = [advantage[n] for n in INPUTS]
    assert ordered == sorted(ordered, reverse=True)

    # ...crossing to negative within the sweep (paper: a doubling of the
    # input flips the margin from +86% to -10%).
    assert advantage[2048] < 0.0

    # CPU cost is more input-sensitive than cGPU cost.
    rows = {row["input_tokens"]: row for row in data["rows"]}
    cpu_growth = (rows[2048]["cpu_usd_per_mtok"]
                  / rows[32]["cpu_usd_per_mtok"])
    gpu_growth = (rows[2048]["cgpu_usd_per_mtok"]
                  / rows[32]["cgpu_usd_per_mtok"])
    assert cpu_growth > 1.5 * gpu_growth
