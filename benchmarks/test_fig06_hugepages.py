"""Fig. 6 — two-socket overheads under hugepage policies on EMR1.

VM-FH uses preallocated 1 GB hugepages, VM-TH 2 MB transparent
hugepages; TDX requests 1 GB pages but silently runs on THP (Insight 7).
Paper bands: TDX 12.11-23.81% over bare metal, TDX over VM-TH 4-10%,
VM-TH over VM-FH 3.19-5.20%.
"""

from helpers import print_rows, run_once, simulate_cached

from repro.core.experiment import cpu_deployment
from repro.core.overhead import latency_overhead, throughput_overhead
from repro.engine.placement import Workload
from repro.hardware.cpu import EMR1
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16
from repro.memsim.pages import HugepagePolicy


def regenerate() -> dict:
    throughput_workload = Workload(LLAMA2_7B, BFLOAT16, 6, 1024, 128,
                                   beam_size=4)
    latency_workload = Workload(LLAMA2_7B, BFLOAT16, 1, 1024, 128)
    configs = {
        "baremetal": ("baremetal", HugepagePolicy.RESERVED_1G),
        "vm-fh": ("vm", HugepagePolicy.RESERVED_1G),
        "vm-th": ("vm", HugepagePolicy.TRANSPARENT_2M),
        "tdx": ("tdx", HugepagePolicy.RESERVED_1G),
    }
    runs = {}
    for label, (backend, pages) in configs.items():
        deployment = cpu_deployment(backend, cpu=EMR1, sockets_used=2,
                                    hugepages=pages)
        runs[label] = (simulate_cached(throughput_workload, deployment),
                       simulate_cached(latency_workload, deployment))
    rows = []
    for label, (tput_run, lat_run) in runs.items():
        rows.append({
            "config": label,
            "throughput_tok_s": tput_run.decode_throughput_tok_s,
            "tput_overhead_pct": 100 * throughput_overhead(
                tput_run, runs["baremetal"][0]),
            "lat_overhead_pct": 100 * latency_overhead(
                lat_run, runs["baremetal"][1], filtered=False),
        })
    return {"rows": rows, "runs": runs}


def test_fig06_hugepages(benchmark):
    data = run_once(benchmark, regenerate)
    print_rows("Fig. 6: two-socket hugepage policies (EMR1)", data["rows"])
    runs = data["runs"]

    tdx_over_base = throughput_overhead(runs["tdx"][0], runs["baremetal"][0])
    assert 0.12 <= tdx_over_base <= 0.24

    tdx_over_th = throughput_overhead(runs["tdx"][0], runs["vm-th"][0])
    assert 0.04 <= tdx_over_th <= 0.105

    th_over_fh = throughput_overhead(runs["vm-th"][0], runs["vm-fh"][0])
    assert 0.030 <= th_over_fh <= 0.055

    # 1G pages matter less outside the TEE: FH VM close to bare metal.
    fh_over_base = throughput_overhead(runs["vm-fh"][0], runs["baremetal"][0])
    assert fh_over_base < th_over_fh + 0.03
